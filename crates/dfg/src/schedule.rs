//! Schedules: the assignment of DFG nodes to control steps, plus the
//! variable lifetime analysis derived from a schedule.
//!
//! Timing convention (standard register-transfer semantics, matching the
//! paper's Fig. 1): a node scheduled in step `t` reads its operands *during*
//! step `t` and its result is stored at the *end* of step `t`, so dependent
//! nodes may execute no earlier than step `t + 1`. Primary inputs are loaded
//! before step 1 (their write step is 0).

use std::fmt;

use crate::graph::{Dfg, NodeId, VarId};

/// Errors arising while constructing or validating a [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The step vector length does not match the node count.
    WrongArity {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Number of steps supplied.
        steps: usize,
    },
    /// A node was assigned step 0 or a step beyond the schedule length.
    StepOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Its assigned step.
        step: u32,
        /// The declared schedule length.
        length: u32,
    },
    /// A dependence `writer -> reader` is violated (`reader` not strictly
    /// after `writer`).
    DependenceViolated {
        /// The producing node.
        writer: NodeId,
        /// The consuming node.
        reader: NodeId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongArity { nodes, steps } => {
                write!(f, "schedule has {steps} steps for {nodes} nodes")
            }
            ScheduleError::StepOutOfRange { node, step, length } => {
                write!(
                    f,
                    "node {node} scheduled at step {step} outside 1..={length}"
                )
            }
            ScheduleError::DependenceViolated { writer, reader } => {
                write!(
                    f,
                    "node {reader} not scheduled strictly after its producer {writer}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A validated schedule for a specific [`Dfg`].
///
/// Steps are 1-based; `length` is the number of control steps `T`. Every
/// node has a *latency* (default 1): a node starting at step `t` with
/// latency `L` executes during steps `t ..= t+L-1` (its *completion*
/// step), holds its operands stable throughout, and its result is stored
/// at the end of the completion step.
///
/// # Examples
///
/// ```
/// use mc_dfg::{DfgBuilder, Op, Schedule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("demo", 4);
/// let a = b.input("a");
/// let s = b.op(Op::Add, a, a);
/// let d = b.op(Op::Sub, s, a);
/// b.mark_output(d);
/// let dfg = b.finish()?;
/// let sched = Schedule::new(&dfg, vec![1, 2], 2)?;
/// assert_eq!(sched.length(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<u32>,
    length: u32,
    latencies: Vec<u32>,
}

impl Schedule {
    /// Builds and validates a unit-latency schedule: `steps[i]` is the
    /// control step of node `i`, `length` the total number of steps.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] when arity, range, or dependence
    /// constraints are violated.
    pub fn new(dfg: &Dfg, steps: Vec<u32>, length: u32) -> Result<Self, ScheduleError> {
        let latencies = vec![1; steps.len()];
        Self::with_latencies(dfg, steps, length, latencies)
    }

    /// Builds and validates a schedule with explicit per-node latencies
    /// (multi-cycle operations): a consumer may start no earlier than the
    /// step after its producer's completion, and every completion must
    /// fit within `length`.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] when arity, range, or dependence
    /// constraints are violated (a zero latency counts as out of range).
    pub fn with_latencies(
        dfg: &Dfg,
        steps: Vec<u32>,
        length: u32,
        latencies: Vec<u32>,
    ) -> Result<Self, ScheduleError> {
        if steps.len() != dfg.num_nodes() || latencies.len() != dfg.num_nodes() {
            return Err(ScheduleError::WrongArity {
                nodes: dfg.num_nodes(),
                steps: steps.len().min(latencies.len()),
            });
        }
        for n in dfg.node_ids() {
            let s = steps[n.index()];
            let l = latencies[n.index()];
            if s == 0 || l == 0 || s + l - 1 > length {
                return Err(ScheduleError::StepOutOfRange {
                    node: n,
                    step: s,
                    length,
                });
            }
        }
        for reader in dfg.node_ids() {
            for writer in dfg.preds(reader) {
                let completion = steps[writer.index()] + latencies[writer.index()] - 1;
                if steps[reader.index()] <= completion {
                    return Err(ScheduleError::DependenceViolated { writer, reader });
                }
            }
        }
        Ok(Schedule {
            steps,
            length,
            latencies,
        })
    }

    /// The control step at which node `n` starts (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the scheduled graph.
    #[must_use]
    pub fn step_of(&self, n: NodeId) -> u32 {
        self.steps[n.index()]
    }

    /// The latency of node `n` in steps (1 for single-cycle operations).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the scheduled graph.
    #[must_use]
    pub fn latency_of(&self, n: NodeId) -> u32 {
        self.latencies[n.index()]
    }

    /// The step at whose end node `n`'s result is stored:
    /// `step + latency − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the scheduled graph.
    #[must_use]
    pub fn completion_of(&self, n: NodeId) -> u32 {
        self.steps[n.index()] + self.latencies[n.index()] - 1
    }

    /// Whether any node has a latency above 1.
    #[must_use]
    pub fn has_multicycle_ops(&self) -> bool {
        self.latencies.iter().any(|&l| l > 1)
    }

    /// The number of control steps `T`.
    #[must_use]
    pub fn length(&self) -> u32 {
        self.length
    }

    /// The nodes scheduled in step `t`, in node order.
    #[must_use]
    pub fn nodes_at_step(&self, t: u32) -> Vec<NodeId> {
        self.steps
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == t)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// The maximum number of nodes in any single step (a lower bound on the
    /// single-clock ALU count).
    #[must_use]
    pub fn max_parallelism(&self) -> usize {
        (1..=self.length)
            .map(|t| self.nodes_at_step(t).len())
            .max()
            .unwrap_or(0)
    }

    /// The raw step vector, indexed by node index.
    #[must_use]
    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// Computes the lifetime of every variable under this schedule.
    ///
    /// See [`Lifetime`] for the conventions. A multi-cycle reader holds
    /// its operands stable for its whole execution, so a variable stays
    /// live through every reader's *completion* step; a multi-cycle
    /// writer produces its value at its completion.
    #[must_use]
    pub fn lifetimes(&self, dfg: &Dfg) -> Vec<Lifetime> {
        dfg.var_ids()
            .map(|v| {
                let write_step = match dfg.writer_of(v) {
                    Some(n) => self.completion_of(n),
                    None => 0, // primary input, loaded before step 1
                };
                let read_steps: Vec<u32> = dfg
                    .readers_of(v)
                    .iter()
                    .map(|&n| self.completion_of(n))
                    .collect();
                let last_read = read_steps.iter().copied().max().unwrap_or(write_step);
                let death = if dfg.var(v).is_output() {
                    self.length.max(last_read)
                } else {
                    last_read
                };
                Lifetime {
                    var: v,
                    write_step,
                    death,
                    read_steps,
                }
            })
            .collect()
    }
}

/// The lifetime of one variable under a schedule.
///
/// The value exists from the end of `write_step` until the end of `death`
/// (inclusive): it is readable during steps `write_step + 1 ..= death`.
/// Primary inputs have `write_step == 0`; primary outputs die no earlier
/// than the schedule length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifetime {
    /// The variable described.
    pub var: VarId,
    /// Step whose end produces the value (0 for primary inputs).
    pub write_step: u32,
    /// Last step during which the value is read (or must persist).
    pub death: u32,
    /// Every step at which a node reads this variable.
    pub read_steps: Vec<u32>,
}

impl Lifetime {
    /// Whether two variables may share an **edge-triggered register** (DFF).
    ///
    /// A DFF captures at the end of the write step, so one variable may be
    /// written in the same step in which the other receives its final read:
    /// compatible iff `self` dies no later than `other` is written, or vice
    /// versa. Two values written in the same step always conflict.
    #[must_use]
    pub fn dff_compatible(&self, other: &Lifetime) -> bool {
        self.write_step != other.write_step
            && (self.death <= other.write_step || other.death <= self.write_step)
    }

    /// Whether two variables may share a **transparent latch**.
    ///
    /// The paper (§4.2) requires *completely disjoint* life spans — no
    /// overlapping READs and WRITEs — because a latch is transparent while
    /// its enable is high: writing during the final-read step of the other
    /// variable would corrupt the read. Compatible iff the closed intervals
    /// `[write_step, death]` do not intersect.
    #[must_use]
    pub fn latch_compatible(&self, other: &Lifetime) -> bool {
        self.death < other.write_step || other.death < self.write_step
    }

    /// Length of the live interval in steps.
    #[must_use]
    pub fn span(&self) -> u32 {
        self.death.saturating_sub(self.write_step)
    }
}

impl fmt::Display for Lifetime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: w@{} d@{}", self.var, self.write_step, self.death)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DfgBuilder;
    use crate::op::Op;

    /// a, c inputs; s = a + c @1; d = s - a @2; d output.
    fn tiny() -> (Dfg, Schedule) {
        let mut b = DfgBuilder::new("tiny", 4);
        let a = b.input("a");
        let c = b.input("c");
        let s = b.op_named("s", Op::Add, a, c);
        let d = b.op_named("d", Op::Sub, s, a);
        b.mark_output(d);
        let g = b.finish().unwrap();
        let sched = Schedule::new(&g, vec![1, 2], 2).unwrap();
        (g, sched)
    }

    #[test]
    fn valid_schedule_accepted() {
        let (_, s) = tiny();
        assert_eq!(s.length(), 2);
        assert_eq!(s.step_of(NodeId(0)), 1);
    }

    #[test]
    fn wrong_arity_rejected() {
        let (g, _) = tiny();
        let err = Schedule::new(&g, vec![1], 2).unwrap_err();
        assert!(matches!(err, ScheduleError::WrongArity { .. }));
    }

    #[test]
    fn step_zero_rejected() {
        let (g, _) = tiny();
        let err = Schedule::new(&g, vec![0, 1], 2).unwrap_err();
        assert!(matches!(err, ScheduleError::StepOutOfRange { .. }));
    }

    #[test]
    fn step_beyond_length_rejected() {
        let (g, _) = tiny();
        let err = Schedule::new(&g, vec![1, 3], 2).unwrap_err();
        assert!(matches!(err, ScheduleError::StepOutOfRange { .. }));
    }

    #[test]
    fn dependence_violation_rejected() {
        let (g, _) = tiny();
        let err = Schedule::new(&g, vec![2, 2], 2).unwrap_err();
        assert!(matches!(err, ScheduleError::DependenceViolated { .. }));
        let err = Schedule::new(&g, vec![2, 1], 2).unwrap_err();
        assert!(matches!(err, ScheduleError::DependenceViolated { .. }));
    }

    #[test]
    fn nodes_at_step_and_parallelism() {
        let (g, s) = tiny();
        assert_eq!(s.nodes_at_step(1), vec![NodeId(0)]);
        assert_eq!(s.nodes_at_step(2), vec![NodeId(1)]);
        assert_eq!(s.max_parallelism(), 1);
        let s2 = Schedule::new(&g, vec![1, 2], 3).unwrap();
        assert_eq!(s2.nodes_at_step(3), Vec::<NodeId>::new());
    }

    #[test]
    fn lifetimes_of_inputs_and_outputs() {
        let (g, s) = tiny();
        let lts = s.lifetimes(&g);
        let lt = |name: &str| {
            let v = g.var_by_name(name).unwrap();
            lts[v.index()].clone()
        };
        // a read at steps 1 and 2, input ⇒ write step 0, death 2.
        assert_eq!(lt("a").write_step, 0);
        assert_eq!(lt("a").death, 2);
        // c read only at step 1.
        assert_eq!(lt("c").death, 1);
        // s written @1, read @2.
        assert_eq!(lt("s").write_step, 1);
        assert_eq!(lt("s").death, 2);
        // d written @2, output ⇒ persists to schedule end (2).
        assert_eq!(lt("d").write_step, 2);
        assert_eq!(lt("d").death, 2);
    }

    #[test]
    fn unread_non_output_dies_at_write() {
        let mut b = DfgBuilder::new("unread", 4);
        let a = b.input("a");
        b.op_named("dead", Op::Add, a, 1u64);
        let out = b.op_named("out", Op::Sub, a, 1u64);
        b.mark_output(out);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![1, 1], 1).unwrap();
        let dead = g.var_by_name("dead").unwrap();
        let lts = s.lifetimes(&g);
        assert_eq!(lts[dead.index()].write_step, 1);
        assert_eq!(lts[dead.index()].death, 1);
        assert_eq!(lts[dead.index()].span(), 0);
    }

    #[test]
    fn dff_compatibility_allows_touching_intervals() {
        let u = Lifetime {
            var: VarId(0),
            write_step: 0,
            death: 2,
            read_steps: vec![2],
        };
        let v = Lifetime {
            var: VarId(1),
            write_step: 2,
            death: 4,
            read_steps: vec![4],
        };
        assert!(u.dff_compatible(&v));
        assert!(v.dff_compatible(&u));
    }

    #[test]
    fn latch_compatibility_requires_strict_disjointness() {
        let u = Lifetime {
            var: VarId(0),
            write_step: 0,
            death: 2,
            read_steps: vec![2],
        };
        let v = Lifetime {
            var: VarId(1),
            write_step: 2,
            death: 4,
            read_steps: vec![4],
        };
        // touching at step 2: fine for DFF, conflict for latch
        assert!(!u.latch_compatible(&v));
        let w = Lifetime {
            var: VarId(2),
            write_step: 3,
            death: 4,
            read_steps: vec![4],
        };
        assert!(u.latch_compatible(&w));
    }

    #[test]
    fn overlapping_lifetimes_incompatible_everywhere() {
        let u = Lifetime {
            var: VarId(0),
            write_step: 0,
            death: 3,
            read_steps: vec![3],
        };
        let v = Lifetime {
            var: VarId(1),
            write_step: 1,
            death: 2,
            read_steps: vec![2],
        };
        assert!(!u.dff_compatible(&v));
        assert!(!u.latch_compatible(&v));
    }
}
