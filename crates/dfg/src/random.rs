//! Random DFG generation for property-based testing and stress runs.
//!
//! The generator produces well-formed, acyclic, single-assignment graphs by
//! construction: each new node draws its operands from already-defined
//! variables (or constants), so every generated graph passes
//! [`DfgBuilder::finish`](crate::DfgBuilder::finish) validation.

use mc_prng::Xoshiro256;

use crate::graph::{Dfg, DfgBuilder, Operand};
use crate::op::{Op, ALL_OPS};
use crate::schedule::Schedule;
use crate::scheduler::{asap, list_schedule, ResourceConstraints};

/// Configuration for [`random_dfg`].
///
/// # Examples
///
/// ```
/// use mc_dfg::random::{RandomDfgConfig, random_dfg};
///
/// let cfg = RandomDfgConfig::new(12).with_inputs(4).with_seed(7);
/// let dfg = random_dfg(&cfg);
/// assert_eq!(dfg.num_nodes(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct RandomDfgConfig {
    nodes: usize,
    inputs: usize,
    width: u8,
    seed: u64,
    ops: Vec<Op>,
    const_prob: f64,
}

impl RandomDfgConfig {
    /// A configuration generating `nodes` operation nodes with defaults:
    /// 4 inputs, 4-bit width, seed 0, all operations, 10 % constant
    /// operands.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        RandomDfgConfig {
            nodes: nodes.max(1),
            inputs: 4,
            width: 4,
            seed: 0,
            ops: ALL_OPS.to_vec(),
            const_prob: 0.1,
        }
    }

    /// Sets the number of primary inputs (at least 1).
    #[must_use]
    pub fn with_inputs(mut self, inputs: usize) -> Self {
        self.inputs = inputs.max(1);
        self
    }

    /// Sets the datapath width.
    #[must_use]
    pub fn with_width(mut self, width: u8) -> Self {
        self.width = width;
        self
    }

    /// Sets the RNG seed (generation is fully deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Restricts the operation alphabet (must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    #[must_use]
    pub fn with_ops(mut self, ops: &[Op]) -> Self {
        assert!(!ops.is_empty(), "operation alphabet must be non-empty");
        self.ops = ops.to_vec();
        self
    }

    /// Sets the probability that an operand is a constant instead of a
    /// variable (clamped to `0.0..=0.9`).
    #[must_use]
    pub fn with_const_prob(mut self, p: f64) -> Self {
        self.const_prob = p.clamp(0.0, 0.9);
        self
    }
}

/// Generates a random well-formed DFG. Deterministic per configuration.
#[must_use]
pub fn random_dfg(cfg: &RandomDfgConfig) -> Dfg {
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut b = DfgBuilder::new(&format!("random_{}", cfg.seed), cfg.width);
    let mut pool: Vec<Operand> = (0..cfg.inputs)
        .map(|i| Operand::Var(b.input(&format!("in{i}"))))
        .collect();
    let max_const = (1u64 << cfg.width) - 1;
    let mut last = None;
    for i in 0..cfg.nodes {
        let pick = |rng: &mut Xoshiro256, pool: &[Operand]| -> Operand {
            if rng.gen_bool(cfg.const_prob) {
                Operand::Const(rng.range_inclusive(0, max_const))
            } else {
                *rng.choose(pool).expect("pool starts non-empty")
            }
        };
        let lhs = pick(&mut rng, &pool);
        let rhs = pick(&mut rng, &pool);
        let op = *rng.choose(&cfg.ops).expect("non-empty alphabet");
        let dest = b.op_named(&format!("r{i}"), op, lhs, rhs);
        pool.push(Operand::Var(dest));
        last = Some(dest);
    }
    // Guarantee at least one primary output: the final node plus a random
    // sample of earlier results.
    if let Some(last) = last {
        b.mark_output(last);
    }
    // Only node results may be outputs: primary inputs are reloaded at the
    // computation boundary, so an input-as-output is rejected by the
    // builder.
    for o in pool.iter().skip(cfg.inputs) {
        if let Operand::Var(v) = o {
            if rng.gen_bool(0.15) {
                b.mark_output(*v);
            }
        }
    }
    b.finish()
        .expect("random DFG is well-formed by construction")
}

/// Generates a random DFG together with a schedule: ASAP for half the
/// seeds, resource-constrained list scheduling for the other half, so
/// downstream property tests see both dense and stretched schedules.
#[must_use]
pub fn random_scheduled_dfg(cfg: &RandomDfgConfig) -> (Dfg, Schedule) {
    let dfg = random_dfg(cfg);
    let sched = if cfg.seed.is_multiple_of(2) {
        asap(&dfg)
    } else {
        let rc = ResourceConstraints::new()
            .with_limit(Op::Mul, 1)
            .with_limit(Op::Div, 1)
            .with_limit(Op::Add, 2);
        list_schedule(&dfg, &rc).expect("limits are non-zero")
    };
    (dfg, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::critical_path;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomDfgConfig::new(20).with_seed(42);
        let a = random_dfg(&cfg);
        let b = random_dfg(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_dfg(&RandomDfgConfig::new(20).with_seed(1));
        let b = random_dfg(&RandomDfgConfig::new(20).with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn generated_graphs_have_requested_size() {
        for seed in 0..10 {
            let cfg = RandomDfgConfig::new(15).with_seed(seed).with_inputs(3);
            let g = random_dfg(&cfg);
            assert_eq!(g.num_nodes(), 15);
            assert_eq!(g.inputs().count(), 3);
            assert!(g.outputs().count() >= 1);
        }
    }

    #[test]
    fn restricted_alphabet_is_respected() {
        let cfg = RandomDfgConfig::new(30)
            .with_seed(9)
            .with_ops(&[Op::Add, Op::Sub]);
        let g = random_dfg(&cfg);
        for n in g.node_ids() {
            assert!(matches!(g.node(n).op(), Op::Add | Op::Sub));
        }
    }

    #[test]
    fn scheduled_variant_is_valid() {
        for seed in 0..8 {
            let cfg = RandomDfgConfig::new(12).with_seed(seed);
            let (g, s) = random_scheduled_dfg(&cfg);
            assert!(s.length() >= critical_path(&g));
            assert_eq!(s.steps().len(), g.num_nodes());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_alphabet_panics() {
        let _ = RandomDfgConfig::new(5).with_ops(&[]);
    }
}
