//! Data-flow graph (DFG) representation of a scheduled behaviour.
//!
//! A behaviour is a set of single-assignment *variables* connected by binary
//! *operation nodes*. Primary inputs are variables written by the
//! environment; every other variable is written by exactly one node.
//! Dependence edges are implied: node `B` depends on node `A` when `B` reads
//! the variable `A` writes.

use std::collections::BTreeMap;
use std::fmt;

use crate::op::Op;

/// Identifier of a variable within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The dense index of this variable (`0..dfg.num_vars()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an operation node within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node (`0..dfg.num_nodes()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A source operand of an operation node: a variable or a literal constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Reads the named variable.
    Var(VarId),
    /// A hard-wired constant (masked to the datapath width on evaluation).
    Const(u64),
}

impl Operand {
    /// The variable read by this operand, if any.
    #[must_use]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<u64> for Operand {
    fn from(c: u64) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "#{c}"),
        }
    }
}

/// How a variable comes into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Written by the environment before the computation starts.
    Input,
    /// Written by exactly one operation node.
    Internal,
}

/// Metadata of one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    name: String,
    kind: VarKind,
    output: bool,
}

impl Variable {
    /// The human-readable name given at construction.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the variable is a primary input or internally computed.
    #[must_use]
    pub fn kind(&self) -> VarKind {
        self.kind
    }

    /// Whether the variable is a primary output of the behaviour.
    #[must_use]
    pub fn is_output(&self) -> bool {
        self.output
    }

    /// Whether the variable is a primary input.
    #[must_use]
    pub fn is_input(&self) -> bool {
        self.kind == VarKind::Input
    }
}

/// One binary operation node: `dest = lhs op rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    op: Op,
    lhs: Operand,
    rhs: Operand,
    dest: VarId,
}

impl Node {
    /// The operation performed.
    #[must_use]
    pub fn op(&self) -> Op {
        self.op
    }

    /// The left operand.
    #[must_use]
    pub fn lhs(&self) -> Operand {
        self.lhs
    }

    /// The right operand.
    #[must_use]
    pub fn rhs(&self) -> Operand {
        self.rhs
    }

    /// The variable written by this node.
    #[must_use]
    pub fn dest(&self) -> VarId {
        self.dest
    }

    /// Both operands, left first.
    #[must_use]
    pub fn operands(&self) -> [Operand; 2] {
        [self.lhs, self.rhs]
    }

    /// The variables read by this node (0, 1 or 2 entries; duplicates kept).
    pub fn read_vars(&self) -> impl Iterator<Item = VarId> {
        self.operands().into_iter().filter_map(Operand::as_var)
    }
}

/// Errors arising while building or validating a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// A variable name was declared twice.
    DuplicateName(String),
    /// The requested datapath width is outside `1..=63`.
    BadWidth(u8),
    /// An operand references a variable that is never written.
    UndefinedVar(VarId),
    /// The dependence relation contains a cycle through the named variable.
    Cycle(VarId),
    /// The graph has no nodes.
    Empty,
    /// Evaluation was invoked without a value for the named input.
    MissingInput(String),
    /// A primary input was marked as a primary output. Inputs are reloaded
    /// at every computation boundary, so they cannot double as outputs;
    /// pass the value through an identity operation if needed.
    InputAsOutput(String),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::DuplicateName(n) => write!(f, "duplicate variable name `{n}`"),
            DfgError::BadWidth(w) => write!(f, "datapath width {w} outside 1..=63"),
            DfgError::UndefinedVar(v) => write!(f, "operand reads undefined variable {v}"),
            DfgError::Cycle(v) => write!(f, "dependence cycle through variable {v}"),
            DfgError::Empty => write!(f, "data-flow graph has no operation nodes"),
            DfgError::MissingInput(n) => write!(f, "no value supplied for input `{n}`"),
            DfgError::InputAsOutput(n) => {
                write!(f, "primary input `{n}` cannot be a primary output")
            }
        }
    }
}

impl std::error::Error for DfgError {}

/// An immutable, validated data-flow graph.
///
/// Construct with [`DfgBuilder`]. All well-formedness invariants (single
/// assignment, acyclicity, defined operands) hold by construction.
///
/// # Examples
///
/// ```
/// use mc_dfg::{DfgBuilder, Op};
///
/// # fn main() -> Result<(), mc_dfg::DfgError> {
/// let mut b = DfgBuilder::new("demo", 4);
/// let a = b.input("a");
/// let bb = b.input("b");
/// let s = b.op(Op::Add, a, bb);
/// b.mark_output(s);
/// let dfg = b.finish()?;
/// assert_eq!(dfg.num_nodes(), 1);
/// assert_eq!(dfg.inputs().count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfg {
    name: String,
    width: u8,
    vars: Vec<Variable>,
    nodes: Vec<Node>,
    /// `writer[v]` is the node writing variable `v`, if internal.
    writer: Vec<Option<NodeId>>,
    /// `readers[v]` are the nodes reading variable `v`, in node order.
    readers: Vec<Vec<NodeId>>,
    /// Nodes in one fixed topological order of the dependence relation.
    topo: Vec<NodeId>,
}

impl Dfg {
    /// The behaviour's name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The datapath bit width.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of operation nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The metadata of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    #[must_use]
    pub fn var(&self, v: VarId) -> &Variable {
        &self.vars[v.index()]
    }

    /// The node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this graph.
    #[must_use]
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.index()]
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over the primary-input variable ids.
    pub fn inputs(&self) -> impl Iterator<Item = VarId> + '_ {
        self.var_ids().filter(|v| self.var(*v).is_input())
    }

    /// Iterates over the primary-output variable ids.
    pub fn outputs(&self) -> impl Iterator<Item = VarId> + '_ {
        self.var_ids().filter(|v| self.var(*v).is_output())
    }

    /// The node writing `v`, or `None` for primary inputs.
    #[must_use]
    pub fn writer_of(&self, v: VarId) -> Option<NodeId> {
        self.writer[v.index()]
    }

    /// The nodes reading `v`, in node order (a node reading `v` twice
    /// appears once).
    #[must_use]
    pub fn readers_of(&self, v: VarId) -> &[NodeId] {
        &self.readers[v.index()]
    }

    /// The nodes `n` depends on (nodes writing variables `n` reads).
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(n).read_vars().filter_map(|v| self.writer_of(v))
    }

    /// The nodes depending on `n` (nodes reading the variable `n` writes).
    #[must_use]
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        self.readers_of(self.node(n).dest())
    }

    /// The nodes in one fixed topological order of the dependence relation.
    #[must_use]
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Looks up a variable by name.
    #[must_use]
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.var_ids().find(|v| self.var(*v).name() == name)
    }

    /// Histogram of operation counts, keyed by [`Op`].
    #[must_use]
    pub fn op_histogram(&self) -> BTreeMap<Op, usize> {
        let mut h = BTreeMap::new();
        for n in &self.nodes {
            *h.entry(n.op()).or_insert(0) += 1;
        }
        h
    }

    /// Evaluates the behaviour directly (no netlist), returning the value of
    /// every variable. This is the functional reference the synthesised
    /// datapath is checked against.
    ///
    /// `inputs` maps primary-input variable ids to values; values are masked
    /// to the datapath width.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::MissingInput`] if a primary input has no value.
    pub fn evaluate(&self, inputs: &BTreeMap<VarId, u64>) -> Result<Vec<u64>, DfgError> {
        let mask = (1u64 << self.width) - 1;
        let mut vals = vec![0u64; self.vars.len()];
        let mut have = vec![false; self.vars.len()];
        for v in self.inputs() {
            let x = *inputs
                .get(&v)
                .ok_or_else(|| DfgError::MissingInput(self.var(v).name().to_owned()))?;
            vals[v.index()] = x & mask;
            have[v.index()] = true;
        }
        for &n in &self.topo {
            let node = self.node(n);
            let read = |o: Operand| -> u64 {
                match o {
                    Operand::Var(v) => {
                        debug_assert!(have[v.index()], "topological order violated");
                        vals[v.index()]
                    }
                    Operand::Const(c) => c & mask,
                }
            };
            let r = node
                .op()
                .apply(read(node.lhs()), read(node.rhs()), self.width);
            vals[node.dest().index()] = r;
            have[node.dest().index()] = true;
        }
        Ok(vals)
    }

    /// Convenience wrapper around [`Dfg::evaluate`] keyed by variable name.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::MissingInput`] if a primary input has no value.
    pub fn evaluate_named(
        &self,
        inputs: &BTreeMap<&str, u64>,
    ) -> Result<BTreeMap<String, u64>, DfgError> {
        let mut by_id = BTreeMap::new();
        for v in self.inputs() {
            let name = self.var(v).name();
            let x = *inputs
                .get(name)
                .ok_or_else(|| DfgError::MissingInput(name.to_owned()))?;
            by_id.insert(v, x);
        }
        let vals = self.evaluate(&by_id)?;
        Ok(self
            .var_ids()
            .map(|v| (self.var(v).name().to_owned(), vals[v.index()]))
            .collect())
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dfg `{}` ({} bits)", self.name, self.width)?;
        for n in self.node_ids() {
            let node = self.node(n);
            writeln!(
                f,
                "  {n}: {} = {} {} {}",
                self.var(node.dest()).name(),
                node.lhs(),
                node.op(),
                node.rhs()
            )?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Dfg`]. See the type-level example on [`Dfg`].
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    width: u8,
    vars: Vec<Variable>,
    nodes: Vec<Node>,
    names_seen: BTreeMap<String, VarId>,
    duplicate: Option<String>,
}

impl DfgBuilder {
    /// Starts a behaviour named `name` on a `width`-bit datapath.
    #[must_use]
    pub fn new(name: &str, width: u8) -> Self {
        DfgBuilder {
            name: name.to_owned(),
            width,
            vars: Vec::new(),
            nodes: Vec::new(),
            names_seen: BTreeMap::new(),
            duplicate: None,
        }
    }

    fn add_var(&mut self, name: String, kind: VarKind) -> VarId {
        let id = VarId(self.vars.len() as u32);
        if self.names_seen.insert(name.clone(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        self.vars.push(Variable {
            name,
            kind,
            output: false,
        });
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: &str) -> VarId {
        self.add_var(name.to_owned(), VarKind::Input)
    }

    /// Adds the node `dest = lhs op rhs` with an auto-generated destination
    /// name (`t0`, `t1`, …) and returns the destination variable.
    pub fn op(&mut self, op: Op, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> VarId {
        let name = format!("t{}", self.nodes.len());
        self.op_named(&name, op, lhs, rhs)
    }

    /// Adds the node `dest = lhs op rhs` with an explicit destination name.
    pub fn op_named(
        &mut self,
        dest_name: &str,
        op: Op,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> VarId {
        let dest = self.add_var(dest_name.to_owned(), VarKind::Internal);
        self.nodes.push(Node {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
            dest,
        });
        dest
    }

    /// Marks `v` as a primary output.
    pub fn mark_output(&mut self, v: VarId) -> &mut Self {
        self.vars[v.index()].output = true;
        self
    }

    /// Looks up a declared variable by name (inputs and node results).
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.names_seen.get(name).copied()
    }

    /// Renames an *internal* variable (used by the text parser to bind
    /// generated temporaries to their assignment targets). Returns `false`
    /// — leaving the builder unchanged — when `new_name` is already taken
    /// or `v` is a primary input.
    pub fn rename(&mut self, v: VarId, new_name: &str) -> bool {
        if self.names_seen.contains_key(new_name) || self.vars[v.index()].kind == VarKind::Input {
            return false;
        }
        let old = std::mem::replace(&mut self.vars[v.index()].name, new_name.to_owned());
        self.names_seen.remove(&old);
        self.names_seen.insert(new_name.to_owned(), v);
        true
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns an error when the width is out of range, a name is duplicated,
    /// an operand references an out-of-range variable, the graph is empty, or
    /// the dependence relation is cyclic (impossible through this builder but
    /// checked for defence in depth).
    pub fn finish(self) -> Result<Dfg, DfgError> {
        if !(1..=63).contains(&self.width) {
            return Err(DfgError::BadWidth(self.width));
        }
        if let Some(n) = self.duplicate {
            return Err(DfgError::DuplicateName(n));
        }
        if self.nodes.is_empty() {
            return Err(DfgError::Empty);
        }
        if let Some(v) = self
            .vars
            .iter()
            .find(|v| v.kind == VarKind::Input && v.output)
        {
            return Err(DfgError::InputAsOutput(v.name.clone()));
        }
        let nv = self.vars.len();
        let mut writer: Vec<Option<NodeId>> = vec![None; nv];
        let mut readers: Vec<Vec<NodeId>> = vec![Vec::new(); nv];
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            writer[node.dest.index()] = Some(id);
            for v in node.read_vars() {
                if v.index() >= nv {
                    return Err(DfgError::UndefinedVar(v));
                }
                if readers[v.index()].last() != Some(&id) {
                    readers[v.index()].push(id);
                }
            }
        }
        // Every read variable must be an input or written by some node.
        for (vi, var) in self.vars.iter().enumerate() {
            if !readers[vi].is_empty() && var.kind == VarKind::Internal && writer[vi].is_none() {
                return Err(DfgError::UndefinedVar(VarId(vi as u32)));
            }
        }
        // Kahn topological sort over dependence edges.
        let nn = self.nodes.len();
        // In-degree counts *distinct* producing variables, matching the
        // deduplicated `readers` lists that drive the decrements below
        // (a node reading the same variable in both operands has one edge).
        let mut indeg = vec![0usize; nn];
        for (i, node) in self.nodes.iter().enumerate() {
            let reads: Vec<VarId> = node.read_vars().collect();
            indeg[i] = reads
                .iter()
                .enumerate()
                .filter(|&(j, v)| writer[v.index()].is_some() && !reads[..j].contains(v))
                .count();
        }
        let mut queue: Vec<usize> = (0..nn).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(nn);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            topo.push(NodeId(i as u32));
            for &r in &readers[self.nodes[i].dest.index()] {
                indeg[r.index()] -= 1;
                if indeg[r.index()] == 0 {
                    queue.push(r.index());
                }
            }
        }
        if topo.len() != nn {
            let stuck = (0..nn).find(|&i| indeg[i] > 0).expect("cycle member");
            return Err(DfgError::Cycle(self.nodes[stuck].dest));
        }
        Ok(Dfg {
            name: self.name,
            width: self.width,
            vars: self.vars,
            nodes: self.nodes,
            writer,
            readers,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new("tiny", 4);
        let a = b.input("a");
        let c = b.input("c");
        let s = b.op_named("s", Op::Add, a, c);
        let d = b.op_named("d", Op::Sub, s, a);
        b.mark_output(d);
        b.finish().expect("valid graph")
    }

    #[test]
    fn builder_produces_expected_shape() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_vars(), 4);
        assert_eq!(g.inputs().count(), 2);
        assert_eq!(g.outputs().count(), 1);
        assert_eq!(g.width(), 4);
    }

    #[test]
    fn writer_and_readers_are_tracked() {
        let g = tiny();
        let a = g.var_by_name("a").unwrap();
        let s = g.var_by_name("s").unwrap();
        assert_eq!(g.writer_of(a), None);
        assert_eq!(g.writer_of(s), Some(NodeId(0)));
        assert_eq!(g.readers_of(a).len(), 2);
        assert_eq!(g.readers_of(s), &[NodeId(1)]);
    }

    #[test]
    fn preds_and_succs() {
        let g = tiny();
        let n1 = NodeId(1);
        let preds: Vec<_> = g.preds(n1).collect();
        assert_eq!(preds, vec![NodeId(0)]);
        assert_eq!(g.succs(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn topological_order_respects_dependences() {
        let g = tiny();
        let topo = g.topological_order();
        let pos = |n: NodeId| topo.iter().position(|&m| m == n).unwrap();
        assert!(pos(NodeId(0)) < pos(NodeId(1)));
    }

    #[test]
    fn evaluate_computes_reference_values() {
        let g = tiny();
        let a = g.var_by_name("a").unwrap();
        let c = g.var_by_name("c").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(a, 5);
        inputs.insert(c, 3);
        let vals = g.evaluate(&inputs).unwrap();
        let s = g.var_by_name("s").unwrap();
        let d = g.var_by_name("d").unwrap();
        assert_eq!(vals[s.index()], 8);
        assert_eq!(vals[d.index()], 3);
    }

    #[test]
    fn evaluate_named_round_trip() {
        let g = tiny();
        let mut inputs = BTreeMap::new();
        inputs.insert("a", 2);
        inputs.insert("c", 9);
        let vals = g.evaluate_named(&inputs).unwrap();
        assert_eq!(vals["s"], 11);
        assert_eq!(vals["d"], 9);
    }

    #[test]
    fn evaluate_missing_input_errors() {
        let g = tiny();
        let err = g.evaluate(&BTreeMap::new()).unwrap_err();
        assert!(matches!(err, DfgError::MissingInput(_)));
    }

    #[test]
    fn empty_graph_rejected() {
        let b = DfgBuilder::new("empty", 4);
        assert_eq!(b.finish().unwrap_err(), DfgError::Empty);
    }

    #[test]
    fn bad_width_rejected() {
        let mut b = DfgBuilder::new("w", 0);
        let a = b.input("a");
        b.op(Op::Add, a, 1u64);
        assert_eq!(b.finish().unwrap_err(), DfgError::BadWidth(0));
        let mut b = DfgBuilder::new("w", 64);
        let a = b.input("a");
        b.op(Op::Add, a, 1u64);
        assert_eq!(b.finish().unwrap_err(), DfgError::BadWidth(64));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = DfgBuilder::new("dup", 4);
        let a = b.input("a");
        b.input("a");
        b.op(Op::Add, a, 1u64);
        assert!(matches!(
            b.finish().unwrap_err(),
            DfgError::DuplicateName(_)
        ));
    }

    #[test]
    fn constants_evaluate_masked() {
        let mut b = DfgBuilder::new("c", 4);
        let a = b.input("a");
        let s = b.op_named("s", Op::Add, a, 0x13u64); // 0x13 masks to 3
        b.mark_output(s);
        let g = b.finish().unwrap();
        let a = g.var_by_name("a").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(a, 1);
        let vals = g.evaluate(&inputs).unwrap();
        assert_eq!(vals[g.var_by_name("s").unwrap().index()], 4);
    }

    #[test]
    fn op_histogram_counts() {
        let g = tiny();
        let h = g.op_histogram();
        assert_eq!(h[&Op::Add], 1);
        assert_eq!(h[&Op::Sub], 1);
    }

    #[test]
    fn display_is_nonempty() {
        let g = tiny();
        let s = g.to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("s = v0 + v1"));
    }
}
