//! The high-level-synthesis benchmark behaviours evaluated in the paper,
//! plus the §2 motivating example and two extra stress behaviours.
//!
//! The original benchmark sources are cited in the paper: FACET is the
//! Tseng–Siewiorek example \[14\], HAL is the Paulin–Knight differential
//! equation \[13\], the biquad is a standard second-order IIR section \[16\],
//! and the band-pass filter is a fourth-order section after Kung et al.
//! \[17\]. The DFGs below are reconstructions from those sources (see
//! DESIGN.md §2): the operation mixes and dependence shapes match; exact
//! variable naming is ours. Each benchmark carries the *reference schedule*
//! used for the paper-table experiments, since the paper treats the
//! schedule as an input to allocation.

use crate::graph::{Dfg, DfgBuilder};
use crate::op::Op;
use crate::schedule::Schedule;

/// A benchmark behaviour: a validated DFG plus its reference schedule.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The behaviour.
    pub dfg: Dfg,
    /// The reference schedule used in the paper-table experiments.
    pub schedule: Schedule,
    /// One-line provenance note.
    pub description: &'static str,
}

impl Benchmark {
    fn assemble(dfg: Dfg, steps: Vec<u32>, length: u32, description: &'static str) -> Self {
        let schedule = Schedule::new(&dfg, steps, length)
            .expect("benchmark reference schedule is valid by construction");
        Benchmark {
            dfg,
            schedule,
            description,
        }
    }

    /// The behaviour's name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.dfg.name()
    }
}

/// The §2 motivating example: six (+,-) operations scheduled in five steps
/// so that a two-partition (odd/even step) datapath splits into disjoint
/// subcircuits (the paper's Circuit 2, Fig. 1c).
///
/// ```text
/// T1: N1 t1 = a + b
/// T2: N2 t2 = t1 - c
/// T3: N3 t3 = t2 + d     N4 t4 = e - f2
/// T4: N5 t5 = t4 + g
/// T5: N6 t6 = t5 - t3
/// ```
#[must_use]
pub fn motivating() -> Benchmark {
    motivating_w(4)
}

/// [`motivating`] with an explicit datapath width.
#[must_use]
pub fn motivating_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("motivating", width);
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f2 = b.input("f2");
    let g = b.input("g");
    let t1 = b.op_named("t1", Op::Add, a, bb); // N1 @ T1
    let t2 = b.op_named("t2", Op::Sub, t1, c); // N2 @ T2
    let t3 = b.op_named("t3", Op::Add, t2, d); // N3 @ T3
    let t4 = b.op_named("t4", Op::Sub, e, f2); // N4 @ T3
    let t5 = b.op_named("t5", Op::Add, t4, g); // N5 @ T4
    let t6 = b.op_named("t6", Op::Sub, t5, t3); // N6 @ T5
    b.mark_output(t6);
    let dfg = b.finish().expect("motivating example is well-formed");
    Benchmark::assemble(
        dfg,
        vec![1, 2, 3, 3, 4, 5],
        5,
        "DAC'96 §2 motivating example (Fig. 1), 6 ops in 5 steps",
    )
}

/// The FACET example of Tseng & Siewiorek \[14\]: a small behaviour mixing
/// arithmetic (`+ - * /`) and logic (`& |`) over four control steps, the
/// workload of the paper's Table 1.
#[must_use]
pub fn facet() -> Benchmark {
    facet_w(4)
}

/// [`facet`] with an explicit datapath width.
#[must_use]
pub fn facet_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("facet", width);
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f2 = b.input("f2");
    let g = b.input("g");
    let h = b.input("h");
    // T1
    let s1 = b.op_named("s1", Op::Add, a, bb);
    let l1 = b.op_named("l1", Op::And, c, d);
    // T2
    let p1 = b.op_named("p1", Op::Mul, s1, e);
    let l2 = b.op_named("l2", Op::Or, l1, f2);
    // T3
    let q1 = b.op_named("q1", Op::Div, p1, g);
    let s2 = b.op_named("s2", Op::Add, l2, h);
    // T4
    let r1 = b.op_named("r1", Op::Sub, q1, s2);
    b.mark_output(r1);
    b.mark_output(q1);
    let dfg = b.finish().expect("FACET reconstruction is well-formed");
    Benchmark::assemble(
        dfg,
        vec![1, 1, 2, 2, 3, 3, 4],
        4,
        "FACET example after Tseng & Siewiorek [14]; Table 1 workload",
    )
}

/// The HAL differential-equation example of Paulin & Knight \[13\]: the body
/// of the Euler iteration solving `y'' + 3xy' + 3y = 0`, the workload of
/// the paper's Table 2.
///
/// ```text
/// x1 = x + dx
/// u1 = u - (3*x*u*dx) - (3*y*dx)
/// y1 = y + u*dx
/// c  = x1 < a
/// ```
#[must_use]
pub fn hal() -> Benchmark {
    hal_w(4)
}

/// [`hal`] with an explicit datapath width.
#[must_use]
pub fn hal_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("hal", width);
    let x = b.input("x");
    let y = b.input("y");
    let u = b.input("u");
    let dx = b.input("dx");
    let a = b.input("a");
    // T1
    let m1 = b.op_named("m1", Op::Mul, 3u64, x); // 3x
    let m2 = b.op_named("m2", Op::Mul, u, dx); // u·dx
                                               // T2
    let m3 = b.op_named("m3", Op::Mul, m1, m2); // 3x·u·dx
    let m4 = b.op_named("m4", Op::Mul, 3u64, y); // 3y
                                                 // T3
    let m5 = b.op_named("m5", Op::Mul, m4, dx); // 3y·dx
    let m6 = b.op_named("m6", Op::Mul, u, dx); // u·dx (the canonical DFG has
                                               // a second u·dx node for y1)
    let s1 = b.op_named("s1", Op::Sub, u, m3); // u - 3x·u·dx
    let x1 = b.op_named("x1", Op::Add, x, dx);
    // T4
    let u1 = b.op_named("u1", Op::Sub, s1, m5);
    let y1 = b.op_named("y1", Op::Add, y, m6);
    let c = b.op_named("c", Op::Lt, x1, a);
    let _ = m2; // m2 feeds m3; kept distinct from m6 as in the original DFG
    b.mark_output(u1);
    b.mark_output(y1);
    b.mark_output(x1);
    b.mark_output(c);
    let dfg = b.finish().expect("HAL reconstruction is well-formed");
    Benchmark::assemble(
        dfg,
        vec![1, 1, 2, 2, 3, 3, 3, 3, 4, 4, 4],
        4,
        "HAL differential-equation example after Paulin & Knight [13]; Table 2 workload",
    )
}

/// A second-order IIR (biquad) filter section in direct form II transposed,
/// coefficients as primary inputs; the workload of the paper's Table 3.
///
/// ```text
/// w0 = x - a1*w1 - a2*w2
/// y  = b0*w0 + b1*w1 + b2*w2
/// ```
#[must_use]
pub fn biquad() -> Benchmark {
    biquad_w(4)
}

/// [`biquad`] with an explicit datapath width.
#[must_use]
pub fn biquad_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("biquad", width);
    let x = b.input("x");
    let w1 = b.input("w1");
    let w2 = b.input("w2");
    let a1 = b.input("a1");
    let a2 = b.input("a2");
    let b0 = b.input("b0");
    let b1 = b.input("b1");
    let b2 = b.input("b2");
    // T1
    let p1 = b.op_named("p1", Op::Mul, a1, w1);
    let p2 = b.op_named("p2", Op::Mul, a2, w2);
    // T2
    let s1 = b.op_named("s1", Op::Sub, x, p1);
    let q1 = b.op_named("q1", Op::Mul, b1, w1);
    // T3
    let w0 = b.op_named("w0", Op::Sub, s1, p2);
    let q2 = b.op_named("q2", Op::Mul, b2, w2);
    // T4
    let q0 = b.op_named("q0", Op::Mul, b0, w0);
    let s2 = b.op_named("s2", Op::Add, q1, q2);
    // T5
    let y = b.op_named("y", Op::Add, q0, s2);
    b.mark_output(y);
    b.mark_output(w0);
    let dfg = b.finish().expect("biquad is well-formed");
    Benchmark::assemble(
        dfg,
        vec![1, 1, 2, 2, 3, 3, 4, 4, 5],
        5,
        "second-order IIR (biquad) section after Green & Turner [16]; Table 3 workload",
    )
}

/// A fourth-order band-pass filter built as a cascade of two biquad
/// sections (after Kung, Whitehouse & Kailath \[17\]); the workload of the
/// paper's Table 4. Ten multiplies and eight additions/subtractions in
/// nine control steps, with many simultaneously live state variables —
/// the register-dominated profile the paper's Table 4 shows.
#[must_use]
pub fn bandpass() -> Benchmark {
    bandpass_w(4)
}

/// [`bandpass`] with an explicit datapath width.
#[must_use]
pub fn bandpass_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("bandpass", width);
    let x = b.input("x");
    // Section 1 state and coefficients.
    let u1 = b.input("u1");
    let u2 = b.input("u2");
    let a11 = b.input("a11");
    let a12 = b.input("a12");
    let b10 = b.input("b10");
    let b11 = b.input("b11");
    let b12 = b.input("b12");
    // Section 2 state and coefficients.
    let v1 = b.input("v1");
    let v2 = b.input("v2");
    let a21 = b.input("a21");
    let a22 = b.input("a22");
    let b20 = b.input("b20");
    let b21 = b.input("b21");
    let b22 = b.input("b22");
    // Section 1.
    let p1 = b.op_named("p1", Op::Mul, a11, u1); // T1
    let p2 = b.op_named("p2", Op::Mul, a12, u2); // T1
    let s1 = b.op_named("s1", Op::Sub, x, p1); // T2
    let q1 = b.op_named("q1", Op::Mul, b11, u1); // T2
    let u0 = b.op_named("u0", Op::Sub, s1, p2); // T3
    let q2 = b.op_named("q2", Op::Mul, b12, u2); // T3
    let q0 = b.op_named("q0", Op::Mul, b10, u0); // T4
    let s2 = b.op_named("s2", Op::Add, q1, q2); // T4
    let m = b.op_named("m", Op::Add, q0, s2); // T5  (section-1 output)
                                              // Section 2, fed by m.
    let r1 = b.op_named("r1", Op::Mul, a21, v1); // T4
    let r2 = b.op_named("r2", Op::Mul, a22, v2); // T5
    let s3 = b.op_named("s3", Op::Sub, m, r1); // T6
    let g1 = b.op_named("g1", Op::Mul, b21, v1); // T6
    let v0 = b.op_named("v0", Op::Sub, s3, r2); // T7
    let g2 = b.op_named("g2", Op::Mul, b22, v2); // T7
    let g0 = b.op_named("g0", Op::Mul, b20, v0); // T8
    let s4 = b.op_named("s4", Op::Add, g1, g2); // T8
    let y = b.op_named("y", Op::Add, g0, s4); // T9... folded to 8 below
    b.mark_output(y);
    b.mark_output(u0);
    b.mark_output(v0);
    let dfg = b.finish().expect("band-pass cascade is well-formed");
    Benchmark::assemble(
        dfg,
        vec![1, 1, 2, 2, 3, 3, 4, 4, 5, 4, 5, 6, 6, 7, 7, 8, 8, 9],
        9,
        "fourth-order band-pass (two cascaded biquads) after Kung et al. [17]; Table 4 workload",
    )
}

/// An eight-tap FIR filter: eight multiplies feeding a balanced adder tree.
/// Not in the paper; used for ablations and stress tests (a multiply-heavy,
/// shallow behaviour).
#[must_use]
pub fn fir8() -> Benchmark {
    fir8_w(4)
}

/// [`fir8`] with an explicit datapath width.
#[must_use]
pub fn fir8_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("fir8", width);
    let xs: Vec<_> = (0..8).map(|i| b.input(&format!("x{i}"))).collect();
    let cs: Vec<_> = (0..8).map(|i| b.input(&format!("c{i}"))).collect();
    let ps: Vec<_> = (0..8)
        .map(|i| b.op_named(&format!("p{i}"), Op::Mul, xs[i], cs[i]))
        .collect();
    let a0 = b.op_named("a0", Op::Add, ps[0], ps[1]);
    let a1 = b.op_named("a1", Op::Add, ps[2], ps[3]);
    let a2 = b.op_named("a2", Op::Add, ps[4], ps[5]);
    let a3 = b.op_named("a3", Op::Add, ps[6], ps[7]);
    let s0 = b.op_named("s0", Op::Add, a0, a1);
    let s1 = b.op_named("s1", Op::Add, a2, a3);
    let y = b.op_named("y", Op::Add, s0, s1);
    b.mark_output(y);
    let dfg = b.finish().expect("FIR8 is well-formed");
    // Two multiplies per step (4 steps), adder tree interleaved behind them.
    let steps = vec![1, 1, 2, 2, 3, 3, 4, 4, 2, 3, 4, 5, 4, 6, 7];
    Benchmark::assemble(
        dfg,
        steps,
        7,
        "8-tap FIR filter; ablation workload (not in paper)",
    )
}

/// A two-stage autoregressive lattice filter: alternating multiply/add
/// stages with long state lifetimes. Not in the paper; used for ablations.
#[must_use]
pub fn ar_lattice() -> Benchmark {
    ar_lattice_w(4)
}

/// [`ar_lattice`] with an explicit datapath width.
#[must_use]
pub fn ar_lattice_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("ar_lattice", width);
    let x = b.input("x");
    let s1 = b.input("s1");
    let s2 = b.input("s2");
    let k1 = b.input("k1");
    let k2 = b.input("k2");
    // Stage 2 (outermost first in AR synthesis form).
    let m1 = b.op_named("m1", Op::Mul, k2, s2); // T1
    let f1 = b.op_named("f1", Op::Sub, x, m1); // T2
    let m2 = b.op_named("m2", Op::Mul, k2, f1); // T3
    let g2 = b.op_named("g2", Op::Add, s2, m2); // T4
                                                // Stage 1.
    let m3 = b.op_named("m3", Op::Mul, k1, s1); // T3
    let f0 = b.op_named("f0", Op::Sub, f1, m3); // T4
    let m4 = b.op_named("m4", Op::Mul, k1, f0); // T5
    let g1 = b.op_named("g1", Op::Add, s1, m4); // T6
    b.mark_output(f0);
    b.mark_output(g1);
    b.mark_output(g2);
    let dfg = b.finish().expect("AR lattice is well-formed");
    Benchmark::assemble(
        dfg,
        vec![1, 2, 3, 4, 3, 4, 5, 6],
        6,
        "two-stage AR lattice filter; ablation workload (not in paper)",
    )
}

/// A fifth-order elliptic wave digital filter built from eight two-port
/// adaptor sections (1 multiply + 3 additions each, plus two output
/// adders): 8 multiplies and 26 additions/subtractions — the op mix of
/// the classic EWF stress benchmark. Not in the paper; used for scaling
/// studies. The reference schedule is resource-constrained list
/// scheduling with two multipliers.
#[must_use]
pub fn ewf() -> Benchmark {
    ewf_w(4)
}

/// [`ewf`] with an explicit datapath width.
#[must_use]
pub fn ewf_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("ewf", width);
    let x = b.input("x");
    let states: Vec<_> = (1..=8).map(|i| b.input(&format!("s{i}"))).collect();
    let coeffs: Vec<_> = (1..=8).map(|i| b.input(&format!("k{i}"))).collect();
    let mut a = x;
    let mut state_outs = Vec::new();
    for i in 0..8 {
        let d = b.op_named(&format!("d{}", i + 1), Op::Sub, a, states[i]);
        let m = b.op_named(&format!("m{}", i + 1), Op::Mul, coeffs[i], d);
        let bo = b.op_named(&format!("b{}", i + 1), Op::Add, states[i], m);
        a = b.op_named(&format!("a{}", i + 1), Op::Add, a, m);
        state_outs.push(bo);
    }
    let y1 = b.op_named("y1", Op::Add, a, state_outs[7]);
    let y2 = b.op_named("y2", Op::Add, state_outs[0], state_outs[1]);
    for &s in &state_outs {
        b.mark_output(s);
    }
    b.mark_output(y1);
    b.mark_output(y2);
    let dfg = b.finish().expect("EWF-style filter is well-formed");
    let schedule = crate::scheduler::list_schedule(
        &dfg,
        &crate::scheduler::ResourceConstraints::new().with_limit(Op::Mul, 2),
    )
    .expect("two multipliers suffice");
    Benchmark {
        dfg,
        schedule,
        description:
            "fifth-order elliptic wave filter (8 adaptor sections); scaling workload (not in paper)",
    }
}

/// A 4-point DCT-II butterfly with coefficient inputs: the classic
/// even/odd decomposition (4 ± butterflies, 4 multiplies, 4 combining
/// additions). Not in the paper; a balanced transform workload.
#[must_use]
pub fn dct4() -> Benchmark {
    dct4_w(4)
}

/// [`dct4`] with an explicit datapath width.
#[must_use]
pub fn dct4_w(width: u8) -> Benchmark {
    let mut b = DfgBuilder::new("dct4", width);
    let x0 = b.input("x0");
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let x3 = b.input("x3");
    let c1 = b.input("c1");
    let c3 = b.input("c3");
    let s0 = b.op_named("s0", Op::Add, x0, x3);
    let s1 = b.op_named("s1", Op::Add, x1, x2);
    let d0 = b.op_named("d0", Op::Sub, x0, x3);
    let d1 = b.op_named("d1", Op::Sub, x1, x2);
    let y0 = b.op_named("y0", Op::Add, s0, s1);
    let y2 = b.op_named("y2", Op::Sub, s0, s1);
    let m1 = b.op_named("m1", Op::Mul, c1, d0);
    let m2 = b.op_named("m2", Op::Mul, c3, d1);
    let m3 = b.op_named("m3", Op::Mul, c3, d0);
    let m4 = b.op_named("m4", Op::Mul, c1, d1);
    let y1 = b.op_named("y1", Op::Add, m1, m2);
    let y3 = b.op_named("y3", Op::Sub, m3, m4);
    for y in [y0, y1, y2, y3] {
        b.mark_output(y);
    }
    let dfg = b.finish().expect("DCT4 is well-formed");
    let schedule = crate::scheduler::list_schedule(
        &dfg,
        &crate::scheduler::ResourceConstraints::new()
            .with_limit(Op::Mul, 2)
            .with_limit(Op::Add, 2)
            .with_limit(Op::Sub, 2),
    )
    .expect("limits are non-zero");
    Benchmark {
        dfg,
        schedule,
        description: "4-point DCT-II butterfly; transform workload (not in paper)",
    }
}

/// The four benchmarks of the paper's evaluation section (Tables 1–4), in
/// table order.
#[must_use]
pub fn paper_benchmarks() -> Vec<Benchmark> {
    vec![facet(), hal(), biquad(), bandpass()]
}

/// Largest node count accepted for a `random:<nodes>:<seed>` benchmark.
pub const MAX_RANDOM_NODES: u64 = 512;

/// Why a benchmark name failed to resolve. Every front end that accepts
/// benchmark names (the CLI, the server, the explorer) surfaces these
/// instead of a silent miss, so `random:0:1`, overflow node counts and
/// trailing spec fields are rejected with the actual reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchmarkNameError {
    /// Not a bundled benchmark name and not a `random:` spec.
    Unknown {
        /// The name as given.
        name: String,
    },
    /// A `random:` spec with the wrong shape or non-numeric fields
    /// (missing seed, trailing fields, overflowing numbers, …).
    RandomSpec {
        /// The spec text after `random:`.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A `random:` node count outside `1..=`[`MAX_RANDOM_NODES`].
    RandomNodes {
        /// The rejected node count.
        nodes: u64,
    },
}

impl std::fmt::Display for BenchmarkNameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkNameError::Unknown { name } => {
                let names: Vec<&'static str> = all_benchmark_names();
                write!(
                    f,
                    "unknown benchmark `{name}`; available: {} (or random:<nodes>:<seed>)",
                    names.join(", ")
                )
            }
            BenchmarkNameError::RandomSpec { spec, reason } => write!(
                f,
                "bad random benchmark spec `random:{spec}`: {reason}; expected random:<nodes>:<seed>"
            ),
            BenchmarkNameError::RandomNodes { nodes } => write!(
                f,
                "random benchmark node count {nodes} is out of range (1..={MAX_RANDOM_NODES})"
            ),
        }
    }
}

impl std::error::Error for BenchmarkNameError {}

/// Resolves a benchmark by name with a typed error: a bundled benchmark,
/// or a member of the mc-prng random DFG family named
/// `random:<nodes>:<seed>` (generated by
/// [`crate::random::random_scheduled_dfg`], so both dense ASAP and
/// stretched list schedules appear across seeds). Deterministic: the same
/// name always yields the same behaviour and schedule.
///
/// # Errors
///
/// [`BenchmarkNameError::Unknown`] for unrecognised names,
/// [`BenchmarkNameError::RandomSpec`] for malformed `random:` specs
/// (wrong field count, non-numeric or overflowing fields), and
/// [`BenchmarkNameError::RandomNodes`] for degenerate node counts.
pub fn parse_name(name: &str) -> Result<Benchmark, BenchmarkNameError> {
    if let Some(spec) = name.strip_prefix("random:") {
        let bad = |reason: &str| BenchmarkNameError::RandomSpec {
            spec: spec.to_owned(),
            reason: reason.to_owned(),
        };
        let fields: Vec<&str> = spec.split(':').collect();
        let [nodes, seed] = fields[..] else {
            return Err(bad(&format!(
                "expected 2 `:`-separated fields, found {}",
                fields.len()
            )));
        };
        let nodes: u64 = nodes
            .parse()
            .map_err(|_| bad(&format!("node count `{nodes}` is not a 64-bit integer")))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| bad(&format!("seed `{seed}` is not a 64-bit integer")))?;
        if nodes == 0 || nodes > MAX_RANDOM_NODES {
            return Err(BenchmarkNameError::RandomNodes { nodes });
        }
        let cfg = crate::random::RandomDfgConfig::new(nodes as usize).with_seed(seed);
        let (dfg, schedule) = crate::random::random_scheduled_dfg(&cfg);
        return Ok(Benchmark {
            dfg,
            schedule,
            description: "mc-prng random DFG family member",
        });
    }
    all_benchmarks()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| BenchmarkNameError::Unknown {
            name: name.to_owned(),
        })
}

/// Resolves a benchmark by name; `None` when [`parse_name`] would report
/// an error. Kept for callers that don't need the reason.
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    parse_name(name).ok()
}

/// The names of every bundled benchmark, paper ones first.
#[must_use]
pub fn all_benchmark_names() -> Vec<&'static str> {
    vec![
        "facet",
        "hal",
        "biquad",
        "bandpass",
        "motivating",
        "fir8",
        "ar_lattice",
        "ewf",
        "dct4",
    ]
}

/// Every bundled benchmark, paper ones first.
#[must_use]
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        facet(),
        hal(),
        biquad(),
        bandpass(),
        motivating(),
        fir8(),
        ar_lattice(),
        ewf(),
        dct4(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::critical_path;
    use std::collections::BTreeMap;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for bm in all_benchmarks() {
            assert!(bm.dfg.num_nodes() > 0, "{}", bm.name());
            assert!(
                bm.schedule.length() >= critical_path(&bm.dfg),
                "{}",
                bm.name()
            );
            assert!(!bm.description.is_empty());
        }
    }

    #[test]
    fn motivating_matches_paper_shape() {
        let bm = motivating();
        assert_eq!(bm.dfg.num_nodes(), 6);
        assert_eq!(bm.schedule.length(), 5);
        // Two ops at T3, one elsewhere — the 2-ALU minimal allocation shape.
        assert_eq!(bm.schedule.nodes_at_step(3).len(), 2);
        assert_eq!(bm.schedule.max_parallelism(), 2);
    }

    #[test]
    fn hal_has_canonical_op_mix() {
        let bm = hal();
        let h = bm.dfg.op_histogram();
        assert_eq!(h[&Op::Mul], 6);
        assert_eq!(h[&Op::Sub], 2);
        assert_eq!(h[&Op::Add], 2);
        assert_eq!(h[&Op::Lt], 1);
        assert_eq!(bm.schedule.length(), 4);
    }

    #[test]
    fn facet_has_mixed_arith_logic() {
        let bm = facet();
        let h = bm.dfg.op_histogram();
        assert!(h.contains_key(&Op::Div));
        assert!(h.contains_key(&Op::And));
        assert!(h.contains_key(&Op::Or));
        assert_eq!(bm.schedule.length(), 4);
    }

    #[test]
    fn biquad_evaluates_filter_equation() {
        let bm = biquad_w(16);
        let mut inputs = BTreeMap::new();
        for (n, v) in [
            ("x", 100u64),
            ("w1", 7),
            ("w2", 3),
            ("a1", 2),
            ("a2", 4),
            ("b0", 1),
            ("b1", 5),
            ("b2", 6),
        ] {
            inputs.insert(n, v);
        }
        let vals = bm.dfg.evaluate_named(&inputs).unwrap();
        let w0 = 100 - 2 * 7 - 4 * 3; // 74
        assert_eq!(vals["w0"], w0);
        assert_eq!(vals["y"], w0 + 5 * 7 + 6 * 3);
    }

    #[test]
    fn hal_evaluates_euler_step() {
        let bm = hal_w(16);
        let mut inputs = BTreeMap::new();
        for (n, v) in [("x", 2u64), ("y", 3), ("u", 50), ("dx", 1), ("a", 10)] {
            inputs.insert(n, v);
        }
        let vals = bm.dfg.evaluate_named(&inputs).unwrap();
        assert_eq!(vals["x1"], 3);
        assert_eq!(vals["y1"], 3 + 50);
        // u1 = u - 3x·u·dx - 3y·dx underflows: modular in 16 bits.
        let expect = 50u64.wrapping_sub(3 * 2 * 50).wrapping_sub(3 * 3) & 0xFFFF;
        assert_eq!(vals["u1"], expect);
        assert_eq!(vals["c"], 1);
    }

    #[test]
    fn bandpass_is_cascade_of_biquads() {
        let bm = bandpass();
        let h = bm.dfg.op_histogram();
        assert_eq!(h[&Op::Mul], 10);
        assert_eq!(h[&Op::Add] + h[&Op::Sub], 8);
        assert_eq!(bm.dfg.inputs().count(), 15);
    }

    #[test]
    fn name_catalog_matches_the_benchmark_catalog() {
        let from_benchmarks: Vec<String> = all_benchmarks()
            .iter()
            .map(|b| b.name().to_owned())
            .collect();
        assert_eq!(all_benchmark_names(), from_benchmarks);
    }

    #[test]
    fn paper_benchmarks_are_the_four_tables() {
        let names: Vec<_> = paper_benchmarks()
            .iter()
            .map(|b| b.name().to_owned())
            .collect();
        assert_eq!(names, ["facet", "hal", "biquad", "bandpass"]);
    }

    #[test]
    fn width_variants_propagate() {
        assert_eq!(facet_w(8).dfg.width(), 8);
        assert_eq!(hal_w(16).dfg.width(), 16);
        assert_eq!(ewf_w(8).dfg.width(), 8);
    }

    #[test]
    fn ewf_has_classic_op_mix() {
        let bm = ewf();
        let h = bm.dfg.op_histogram();
        assert_eq!(h[&Op::Mul], 8);
        assert_eq!(h[&Op::Add] + h[&Op::Sub], 26);
        assert_eq!(bm.dfg.num_nodes(), 34);
        assert_eq!(bm.dfg.outputs().count(), 10);
        // Two-multiplier limit holds at every step of the reference
        // schedule.
        for t in 1..=bm.schedule.length() {
            let muls = bm
                .schedule
                .nodes_at_step(t)
                .into_iter()
                .filter(|&n| bm.dfg.node(n).op() == Op::Mul)
                .count();
            assert!(muls <= 2);
        }
    }

    #[test]
    fn dct4_evaluates_butterfly() {
        let bm = dct4_w(16);
        let mut inputs = BTreeMap::new();
        for (n, v) in [
            ("x0", 10u64),
            ("x1", 20),
            ("x2", 30),
            ("x3", 40),
            ("c1", 3),
            ("c3", 1),
        ] {
            inputs.insert(n, v);
        }
        let vals = bm.dfg.evaluate_named(&inputs).unwrap();
        assert_eq!(vals["y0"], 100); // (10+40)+(20+30)
        assert_eq!(vals["y2"], 0); // 50-50
                                   // d0 = 10-40 (wraps), d1 = 20-30 (wraps); checked modularly.
        let mask = 0xFFFFu64;
        let d0 = 10u64.wrapping_sub(40) & mask;
        let d1 = 20u64.wrapping_sub(30) & mask;
        assert_eq!(vals["y1"], (3 * d0 + d1) & mask);
        assert_eq!(vals["y3"], (d0).wrapping_sub(3 * d1) & mask);
        // Two-multiplier limit holds in the reference schedule.
        for t in 1..=bm.schedule.length() {
            let muls = bm
                .schedule
                .nodes_at_step(t)
                .into_iter()
                .filter(|&n| bm.dfg.node(n).op() == Op::Mul)
                .count();
            assert!(muls <= 2);
        }
    }

    #[test]
    fn ewf_evaluates_adaptor_chain() {
        let bm = ewf_w(16);
        let mut inputs = BTreeMap::new();
        inputs.insert("x", 100u64);
        for i in 1..=8 {
            inputs.insert(Box::leak(format!("s{i}").into_boxed_str()) as &str, 10);
            inputs.insert(Box::leak(format!("k{i}").into_boxed_str()) as &str, 1);
        }
        let vals = bm.dfg.evaluate_named(&inputs).unwrap();
        // First section with k=1: d1 = 90, m1 = 90, b1 = 100, a1 = 190.
        assert_eq!(vals["d1"], 90);
        assert_eq!(vals["b1"], 100);
        assert_eq!(vals["a1"], 190);
    }
}
