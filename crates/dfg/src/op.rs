//! Operation types for data-flow graph nodes and multi-function ALUs.
//!
//! The DAC'96 evaluation tables describe ALUs by their *function sets*, e.g.
//! `1(*+)` — one ALU implementing multiply and add — or `1(+-&)`. [`Op`] is a
//! single RTL operation and [`FunctionSet`] is the set of operations a
//! (possibly multi-function) ALU realises.

use std::fmt;

/// A primitive RTL operation executed by an ALU in a single time step.
///
/// Comparison operations produce `1` or `0` in the low bit. Division by zero
/// yields the all-ones word of the datapath width (the convention of
/// combinational divider cells, which we document rather than trap).
///
/// # Examples
///
/// ```
/// use mc_dfg::Op;
///
/// assert_eq!(Op::Add.apply(7, 9, 4), 0); // 4-bit wrap-around: 16 mod 16
/// assert_eq!(Op::Gt.apply(9, 7, 4), 1);
/// assert!(Op::Mul.is_expensive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Addition (modular in the datapath width).
    Add,
    /// Subtraction (modular in the datapath width).
    Sub,
    /// Multiplication (low word, modular in the datapath width).
    Mul,
    /// Unsigned division; division by zero yields the all-ones word.
    Div,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Unsigned greater-than; result is `0` or `1`.
    Gt,
    /// Unsigned less-than; result is `0` or `1`.
    Lt,
    /// Logical shift left by the low bits of the second operand.
    Shl,
    /// Logical shift right by the low bits of the second operand.
    Shr,
}

/// All operations, in display order. Useful for iteration in allocators and
/// technology models.
pub const ALL_OPS: [Op; 11] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Gt,
    Op::Lt,
    Op::Shl,
    Op::Shr,
];

impl Op {
    /// Returns the mask for `width` bits (`width` in `1..=63`).
    #[inline]
    fn mask(width: u8) -> u64 {
        debug_assert!((1..=63).contains(&width));
        (1u64 << width) - 1
    }

    /// Evaluates the operation on `width`-bit unsigned operands.
    ///
    /// Operands are masked to `width` bits before evaluation and the result
    /// is masked after, so callers may pass unmasked values.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `width` is not in `1..=63`.
    #[must_use]
    #[inline]
    pub fn apply(self, a: u64, b: u64, width: u8) -> u64 {
        let m = Self::mask(width);
        let (a, b) = (a & m, b & m);
        let r = match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::Div => a.checked_div(b).unwrap_or(m),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Gt => u64::from(a > b),
            Op::Lt => u64::from(a < b),
            Op::Shl => {
                let sh = (b % u64::from(width)) as u32;
                a << sh
            }
            Op::Shr => {
                let sh = (b % u64::from(width)) as u32;
                a >> sh
            }
        };
        r & m
    }

    /// Whether `a op b == b op a` for all operands.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(self, Op::Add | Op::Mul | Op::And | Op::Or | Op::Xor)
    }

    /// Whether the operation requires a large (array-style) combinational
    /// cell — multipliers and dividers — as opposed to a linear-cost one.
    #[must_use]
    pub fn is_expensive(self) -> bool {
        matches!(self, Op::Mul | Op::Div)
    }

    /// The single-character symbol used in the paper's tables (`*`, `+`,
    /// `-`, `/`, `&`, `|`, `^`, `>`, `<`, `«`, `»`).
    #[must_use]
    pub fn symbol(self) -> char {
        match self {
            Op::Add => '+',
            Op::Sub => '-',
            Op::Mul => '*',
            Op::Div => '/',
            Op::And => '&',
            Op::Or => '|',
            Op::Xor => '^',
            Op::Gt => '>',
            Op::Lt => '<',
            Op::Shl => '«',
            Op::Shr => '»',
        }
    }

    /// A stable small index for table/bitset indexing (`0..ALL_OPS.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Op::Add => 0,
            Op::Sub => 1,
            Op::Mul => 2,
            Op::Div => 3,
            Op::And => 4,
            Op::Or => 5,
            Op::Xor => 6,
            Op::Gt => 7,
            Op::Lt => 8,
            Op::Shl => 9,
            Op::Shr => 10,
        }
    }

    /// Inverse of [`Op::index`]. Returns `None` for out-of-range indices.
    #[must_use]
    pub fn from_index(i: usize) -> Option<Op> {
        ALL_OPS.get(i).copied()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// The set of operations a (multi-function) ALU implements.
///
/// Rendered in the paper's table notation: an ALU with `{Mul, Add}` prints
/// as `(*+)`. Backed by a bitset over [`Op::index`], so it is `Copy` and
/// cheap to pass around.
///
/// # Examples
///
/// ```
/// use mc_dfg::{FunctionSet, Op};
///
/// let mut fs = FunctionSet::new();
/// fs.insert(Op::Mul);
/// fs.insert(Op::Add);
/// assert!(fs.contains(Op::Add));
/// assert_eq!(fs.to_string(), "(+*)");
/// assert_eq!(fs.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionSet(u16);

impl FunctionSet {
    /// Creates the empty function set.
    #[must_use]
    pub fn new() -> Self {
        FunctionSet(0)
    }

    /// Creates a singleton set.
    #[must_use]
    pub fn single(op: Op) -> Self {
        let mut s = Self::new();
        s.insert(op);
        s
    }

    /// Creates a set from any iterator of operations.
    pub fn from_ops<I: IntoIterator<Item = Op>>(ops: I) -> Self {
        let mut s = Self::new();
        for op in ops {
            s.insert(op);
        }
        s
    }

    /// Adds an operation; returns `true` if it was newly inserted.
    pub fn insert(&mut self, op: Op) -> bool {
        let bit = 1u16 << op.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes an operation; returns `true` if it was present.
    pub fn remove(&mut self, op: Op) -> bool {
        let bit = 1u16 << op.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the set contains `op`.
    #[must_use]
    pub fn contains(self, op: Op) -> bool {
        self.0 & (1u16 << op.index()) != 0
    }

    /// Number of operations in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The union of two sets.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        FunctionSet(self.0 | other.0)
    }

    /// The intersection of two sets.
    #[must_use]
    pub fn intersection(self, other: Self) -> Self {
        FunctionSet(self.0 & other.0)
    }

    /// Whether every operation of `self` is also in `other`.
    #[must_use]
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the operations in [`Op::index`] order.
    pub fn iter(self) -> impl Iterator<Item = Op> {
        ALL_OPS.into_iter().filter(move |op| self.contains(*op))
    }

    /// Whether the set contains a multiplier or divider.
    #[must_use]
    pub fn has_expensive(self) -> bool {
        self.iter().any(Op::is_expensive)
    }
}

impl FromIterator<Op> for FunctionSet {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Self::from_ops(iter)
    }
}

impl Extend<Op> for FunctionSet {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        for op in iter {
            self.insert(op);
        }
    }
}

impl fmt::Display for FunctionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for op in self.iter() {
            write!(f, "{}", op.symbol())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_in_width() {
        assert_eq!(Op::Add.apply(15, 1, 4), 0);
        assert_eq!(Op::Add.apply(15, 1, 8), 16);
    }

    #[test]
    fn sub_wraps_in_width() {
        assert_eq!(Op::Sub.apply(0, 1, 4), 15);
        assert_eq!(Op::Sub.apply(5, 3, 4), 2);
    }

    #[test]
    fn mul_takes_low_word() {
        assert_eq!(Op::Mul.apply(7, 7, 4), 49 & 0xF);
        assert_eq!(Op::Mul.apply(3, 5, 8), 15);
    }

    #[test]
    fn div_by_zero_is_all_ones() {
        assert_eq!(Op::Div.apply(9, 0, 4), 0xF);
        assert_eq!(Op::Div.apply(9, 2, 4), 4);
    }

    #[test]
    fn comparisons_are_boolean() {
        assert_eq!(Op::Gt.apply(3, 3, 4), 0);
        assert_eq!(Op::Lt.apply(2, 3, 4), 1);
        assert_eq!(Op::Gt.apply(15, 0, 4), 1);
    }

    #[test]
    fn shifts_mask_amount_by_width() {
        assert_eq!(Op::Shl.apply(1, 3, 4), 8);
        // shift of 4 on a 4-bit word wraps the amount to 0
        assert_eq!(Op::Shl.apply(1, 4, 4), 1);
        assert_eq!(Op::Shr.apply(8, 2, 4), 2);
    }

    #[test]
    fn operands_are_masked_before_eval() {
        // 0x13 masked to 4 bits is 3
        assert_eq!(Op::Add.apply(0x13, 0, 4), 3);
    }

    #[test]
    fn commutativity_flags() {
        for op in ALL_OPS {
            if op.is_commutative() {
                for a in 0..16 {
                    for b in 0..16 {
                        assert_eq!(op.apply(a, b, 4), op.apply(b, a, 4), "{op}");
                    }
                }
            }
        }
        assert!(!Op::Sub.is_commutative());
        assert!(!Op::Div.is_commutative());
        assert!(!Op::Gt.is_commutative());
    }

    #[test]
    fn index_round_trips() {
        for (i, op) in ALL_OPS.into_iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Op::from_index(i), Some(op));
        }
        assert_eq!(Op::from_index(ALL_OPS.len()), None);
    }

    #[test]
    fn function_set_basic_ops() {
        let mut fs = FunctionSet::new();
        assert!(fs.is_empty());
        assert!(fs.insert(Op::Mul));
        assert!(!fs.insert(Op::Mul));
        fs.insert(Op::Add);
        assert_eq!(fs.len(), 2);
        assert!(fs.contains(Op::Mul));
        assert!(!fs.contains(Op::Div));
        assert!(fs.remove(Op::Mul));
        assert!(!fs.remove(Op::Mul));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn function_set_display_matches_paper_notation() {
        let fs = FunctionSet::from_ops([Op::Mul, Op::Add]);
        assert_eq!(fs.to_string(), "(+*)");
        let fs = FunctionSet::from_ops([Op::Add, Op::Sub, Op::And]);
        assert_eq!(fs.to_string(), "(+-&)");
    }

    #[test]
    fn function_set_algebra() {
        let a = FunctionSet::from_ops([Op::Add, Op::Sub]);
        let b = FunctionSet::from_ops([Op::Sub, Op::Mul]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(FunctionSet::single(Op::Sub).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.union(b).has_expensive());
        assert!(!a.has_expensive());
    }

    #[test]
    fn function_set_from_iterator_and_extend() {
        let fs: FunctionSet = [Op::Add, Op::Or].into_iter().collect();
        assert_eq!(fs.len(), 2);
        let mut fs2 = fs;
        fs2.extend([Op::Xor, Op::Or]);
        assert_eq!(fs2.len(), 3);
    }
}
