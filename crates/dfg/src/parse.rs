//! A small behavioural description language, so behaviours can live in
//! plain-text files instead of builder code.
//!
//! ```text
//! # biquad section
//! width 8
//! input x, w1, w2, a1, a2, b0, b1, b2
//! w0 = x - a1*w1 - a2*w2
//! y  = b0*w0 + b1*w1 + b2*w2
//! output y, w0
//! ```
//!
//! One assignment per line; expressions use C-like operators
//! (`+ - * / & | ^ < > << >>`) with the usual precedence and parentheses.
//! Compound expressions expand into chains of single-operation nodes with
//! generated intermediate names. `#` starts a comment.

use std::fmt;

use crate::graph::{Dfg, DfgBuilder, DfgError, Operand};
use crate::op::Op;

/// Errors from [`parse_dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexical or syntactic problem at a line/column.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A name was used before it was defined.
    Undefined {
        /// 1-based source line.
        line: usize,
        /// The unknown identifier.
        name: String,
    },
    /// The assembled graph failed validation.
    Graph(DfgError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Undefined { line, name } => {
                write!(f, "line {line}: `{name}` used before definition")
            }
            ParseError::Graph(e) => write!(f, "invalid behaviour: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<DfgError> for ParseError {
    fn from(e: DfgError) -> Self {
        ParseError::Graph(e)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(u64),
    Op(BinOp),
    LParen,
    RParen,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Lt,
    Gt,
    Shl,
    Shr,
}

impl BinOp {
    fn to_op(self) -> Op {
        match self {
            BinOp::Add => Op::Add,
            BinOp::Sub => Op::Sub,
            BinOp::Mul => Op::Mul,
            BinOp::Div => Op::Div,
            BinOp::And => Op::And,
            BinOp::Or => Op::Or,
            BinOp::Xor => Op::Xor,
            BinOp::Lt => Op::Lt,
            BinOp::Gt => Op::Gt,
            BinOp::Shl => Op::Shl,
            BinOp::Shr => Op::Shr,
        }
    }

    /// C-like precedence, higher binds tighter.
    fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Lt | BinOp::Gt => 4,
            BinOp::Shl | BinOp::Shr => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div => 7,
        }
    }
}

fn lex(line: &str, lineno: usize) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            '#' => break,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Op(BinOp::Add));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Op(BinOp::Sub));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Op(BinOp::Mul));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Op(BinOp::Div));
                i += 1;
            }
            '&' => {
                tokens.push(Token::Op(BinOp::And));
                i += 1;
            }
            '|' => {
                tokens.push(Token::Op(BinOp::Or));
                i += 1;
            }
            '^' => {
                tokens.push(Token::Op(BinOp::Xor));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'<') {
                    tokens.push(Token::Op(BinOp::Shl));
                    i += 2;
                } else {
                    tokens.push(Token::Op(BinOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Op(BinOp::Shr));
                    i += 2;
                } else {
                    tokens.push(Token::Op(BinOp::Gt));
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value = text.parse().map_err(|_| ParseError::Syntax {
                    line: lineno,
                    message: format!("number `{text}` out of range"),
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(ParseError::Syntax {
                    line: lineno,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

/// Precedence-climbing expression parser that emits single-op nodes into
/// the builder as it reduces.
struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    line: usize,
    builder: &'a mut DfgBuilder,
    temp_counter: &'a mut usize,
}

impl<'a> ExprParser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn syntax(&self, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn parse_primary(&mut self) -> Result<Operand, ParseError> {
        match self.peek().cloned() {
            Some(Token::Number(v)) => {
                self.pos += 1;
                Ok(Operand::Const(v))
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                let var = self
                    .builder
                    .lookup(&name)
                    .ok_or_else(|| ParseError::Undefined {
                        line: self.line,
                        name: name.clone(),
                    })?;
                Ok(Operand::Var(var))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.parse_expr(0)?;
                match self.peek() {
                    Some(Token::RParen) => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    _ => Err(self.syntax("expected `)`")),
                }
            }
            other => Err(self.syntax(format!("expected operand, found {other:?}"))),
        }
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<Operand, ParseError> {
        let mut lhs = self.parse_primary()?;
        while let Some(&Token::Op(op)) = self.peek() {
            if op.precedence() < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_expr(op.precedence() + 1)?;
            *self.temp_counter += 1;
            let name = format!("_e{}", *self.temp_counter);
            let dest = self.builder.op_named(&name, op.to_op(), lhs, rhs);
            lhs = Operand::Var(dest);
        }
        Ok(lhs)
    }
}

/// Parses a behavioural description (see module docs) into a validated
/// [`Dfg`].
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first problem.
pub fn parse_dfg(name: &str, source: &str) -> Result<Dfg, ParseError> {
    let mut width: u8 = 4;
    let mut builder = DfgBuilder::new(name, width);
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut temp_counter = 0usize;
    let mut width_locked = false;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("width") {
            if width_locked {
                return Err(ParseError::Syntax {
                    line: lineno,
                    message: "width must be declared before any definitions".into(),
                });
            }
            let w: u8 = rest
                .trim()
                .trim_end_matches('#')
                .trim()
                .parse()
                .map_err(|_| ParseError::Syntax {
                    line: lineno,
                    message: format!("bad width `{}`", rest.trim()),
                })?;
            width = w;
            builder = DfgBuilder::new(name, width);
            continue;
        }
        width_locked = true;
        if let Some(rest) = line.strip_prefix("input") {
            for n in split_names(rest) {
                builder.input(&n);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("output") {
            for n in split_names(rest) {
                outputs.push((lineno, n));
            }
            continue;
        }
        // Assignment: name = expr
        let Some(eq) = line.find('=') else {
            return Err(ParseError::Syntax {
                line: lineno,
                message: "expected `name = expression`".into(),
            });
        };
        let dest = line[..eq].trim();
        if dest.is_empty() || !dest.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(ParseError::Syntax {
                line: lineno,
                message: format!("bad assignment target `{dest}`"),
            });
        }
        if builder.lookup(dest).is_some() {
            return Err(ParseError::Syntax {
                line: lineno,
                message: format!("`{dest}` is already defined (single assignment)"),
            });
        }
        let tokens = lex(&line[eq + 1..], lineno)?;
        if tokens.is_empty() {
            return Err(ParseError::Syntax {
                line: lineno,
                message: "empty expression".into(),
            });
        }
        let mut parser = ExprParser {
            tokens: &tokens,
            pos: 0,
            line: lineno,
            builder: &mut builder,
            temp_counter: &mut temp_counter,
        };
        let value = parser.parse_expr(0)?;
        let consumed = parser.pos;
        if consumed != tokens.len() {
            return Err(ParseError::Syntax {
                line: lineno,
                message: format!(
                    "trailing tokens after expression: {:?}",
                    &tokens[consumed..]
                ),
            });
        }
        // Bind the expression result to the target name: if the expression
        // is a bare operand, materialise an identity via renaming — we
        // instead require at least one operation per assignment and name
        // the final node's destination directly.
        match value {
            Operand::Var(v) if builder.rename(v, dest) => {}
            _ => {
                return Err(ParseError::Syntax {
                    line: lineno,
                    message: "an assignment must compute something (pure aliases and \
                              constants are not supported)"
                        .into(),
                });
            }
        }
    }
    for (lineno, name) in outputs {
        let var = builder
            .lookup(&name)
            .ok_or(ParseError::Undefined { line: lineno, name })?;
        builder.mark_output(var);
    }
    Ok(builder.finish()?)
}

/// Renders a [`Dfg`] back into the behavioural DSL, one single-operation
/// assignment per node. `parse_dfg(to_dsl(g))` produces a behaviour that
/// evaluates identically to `g` (names and structure are preserved; the
/// printer quotes every node explicitly, so generated temporaries of the
/// original parse round-trip as ordinary names).
#[must_use]
pub fn to_dsl(dfg: &Dfg) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# behaviour `{}`", dfg.name());
    let _ = writeln!(s, "width {}", dfg.width());
    let inputs: Vec<&str> = dfg.inputs().map(|v| dfg.var(v).name()).collect();
    if !inputs.is_empty() {
        let _ = writeln!(s, "input {}", inputs.join(", "));
    }
    let op_text = |op: Op| match op {
        Op::Shl => "<<".to_owned(),
        Op::Shr => ">>".to_owned(),
        other => other.symbol().to_string(),
    };
    let operand_text = |o: Operand| match o {
        Operand::Var(v) => dfg.var(v).name().to_owned(),
        Operand::Const(c) => c.to_string(),
    };
    for &n in dfg.topological_order() {
        let node = dfg.node(n);
        let _ = writeln!(
            s,
            "{} = {} {} {}",
            dfg.var(node.dest()).name(),
            operand_text(node.lhs()),
            op_text(node.op()),
            operand_text(node.rhs())
        );
    }
    let outputs: Vec<&str> = dfg.outputs().map(|v| dfg.var(v).name()).collect();
    if !outputs.is_empty() {
        let _ = writeln!(s, "output {}", outputs.join(", "));
    }
    s
}

fn split_names(rest: &str) -> Vec<String> {
    rest.split('#')
        .next()
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    const BIQUAD: &str = "
        # biquad section
        width 8
        input x, w1, w2, a1, a2, b0, b1, b2
        w0 = x - a1*w1 - a2*w2
        y  = b0*w0 + b1*w1 + b2*w2
        output y, w0
    ";

    #[test]
    fn parses_biquad_and_matches_builder_semantics() {
        let dfg = parse_dfg("biquad_dsl", BIQUAD).unwrap();
        assert_eq!(dfg.width(), 8);
        assert_eq!(dfg.inputs().count(), 8);
        assert_eq!(dfg.outputs().count(), 2);
        let mut inputs = BTreeMap::new();
        for (n, v) in [
            ("x", 100u64),
            ("w1", 7),
            ("w2", 3),
            ("a1", 2),
            ("a2", 4),
            ("b0", 1),
            ("b1", 5),
            ("b2", 6),
        ] {
            inputs.insert(n, v);
        }
        let vals = dfg.evaluate_named(&inputs).unwrap();
        assert_eq!(vals["w0"], 100 - 14 - 12);
        assert_eq!(vals["y"], (100 - 26) + 35 + 18);
    }

    #[test]
    fn precedence_is_c_like() {
        let dfg = parse_dfg("prec", "input a, b\ny = a + b * 2\noutput y").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("a", 1u64);
        inputs.insert("b", 3);
        let vals = dfg.evaluate_named(&inputs).unwrap();
        assert_eq!(vals["y"], 7, "must parse as a + (b*2)");
    }

    #[test]
    fn parentheses_override_precedence() {
        let dfg = parse_dfg("paren", "input a, b\ny = (a + b) * 2\noutput y").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("a", 1u64);
        inputs.insert("b", 3);
        assert_eq!(dfg.evaluate_named(&inputs).unwrap()["y"], 8);
    }

    #[test]
    fn shifts_and_comparisons_lex() {
        let dfg = parse_dfg(
            "ops",
            "width 8\ninput a, b\ny = (a << 1) ^ (b >> 1)\nc = a < b\noutput y, c",
        )
        .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("a", 3u64);
        inputs.insert("b", 8);
        let vals = dfg.evaluate_named(&inputs).unwrap();
        assert_eq!(vals["y"], 6 ^ 4);
        assert_eq!(vals["c"], 1);
    }

    #[test]
    fn undefined_name_is_located() {
        let err = parse_dfg("bad", "input a\ny = a + zz\noutput y").unwrap_err();
        assert!(matches!(err, ParseError::Undefined { line: 2, ref name } if name == "zz"));
    }

    #[test]
    fn unbalanced_paren_reported() {
        let err = parse_dfg("bad", "input a\ny = (a + 1\noutput y").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn alias_assignment_rejected() {
        let err = parse_dfg("bad", "input a\ny = a\noutput y").unwrap_err();
        assert!(err.to_string().contains("must compute"));
    }

    #[test]
    fn width_after_definition_rejected() {
        let err = parse_dfg("bad", "input a\ny = a + 1\nwidth 8\noutput y").unwrap_err();
        assert!(err.to_string().contains("before any definitions"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse_dfg("bad", "input a\ny = a + 1 )\noutput y").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let dfg = parse_dfg(
            "c",
            "# header\n\ninput a  # the input\ny = a + 1 # inc\n\noutput y\n",
        )
        .unwrap();
        assert_eq!(dfg.num_nodes(), 1);
    }

    #[test]
    fn to_dsl_round_trips_benchmarks() {
        for bm in crate::benchmarks::all_benchmarks() {
            let text = to_dsl(&bm.dfg);
            let reparsed = parse_dfg(bm.dfg.name(), &text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", bm.dfg.name()));
            assert_eq!(
                reparsed.num_nodes(),
                bm.dfg.num_nodes(),
                "{}",
                bm.dfg.name()
            );
            assert_eq!(
                reparsed.inputs().count(),
                bm.dfg.inputs().count(),
                "{}",
                bm.dfg.name()
            );
            // Evaluate both on the same inputs.
            let mut inputs = BTreeMap::new();
            for (i, v) in bm.dfg.inputs().enumerate() {
                inputs.insert(bm.dfg.var(v).name(), (i as u64 * 3 + 1) & 0xF);
            }
            let a = bm.dfg.evaluate_named(&inputs).unwrap();
            let b = reparsed.evaluate_named(&inputs).unwrap();
            for v in bm.dfg.outputs() {
                let name = bm.dfg.var(v).name();
                assert_eq!(a[name], b[name], "{} output {name}", bm.dfg.name());
            }
        }
    }

    #[test]
    fn chained_subtraction_is_left_associative() {
        let dfg = parse_dfg("assoc", "input a, b, c\ny = a - b - c\noutput y").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("a", 10u64);
        inputs.insert("b", 3);
        inputs.insert("c", 2);
        assert_eq!(dfg.evaluate_named(&inputs).unwrap()["y"], 5);
    }
}
