//! Schedulers producing [`Schedule`]s from a [`Dfg`].
//!
//! The paper assumes "the DFG schedule has been determined earlier by any
//! scheduling methodology such as \[15\]". We provide the standard family:
//!
//! * [`asap`] — as-soon-as-possible (dependence-constrained only),
//! * [`alap`] — as-late-as-possible within a target latency,
//! * [`list_schedule`] — resource-constrained list scheduling with
//!   critical-path priority,
//! * [`force_directed`] — time-constrained force-directed scheduling after
//!   Paulin & Knight (the paper's reference \[13\], used for the HAL design).

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::{Dfg, NodeId};
use crate::op::Op;
use crate::schedule::Schedule;

/// Errors from the schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// The requested latency is shorter than the critical path.
    LatencyTooShort {
        /// Requested schedule length.
        requested: u32,
        /// Minimum feasible length (critical path).
        critical_path: u32,
    },
    /// A resource constraint forbids an operation entirely (limit 0).
    ImpossibleConstraint(Op),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::LatencyTooShort {
                requested,
                critical_path,
            } => write!(f, "latency {requested} below critical path {critical_path}"),
            SchedulerError::ImpossibleConstraint(op) => {
                write!(f, "resource constraint allows zero units for `{op}`")
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

/// Per-operation concurrency limits for [`list_schedule`].
///
/// Operations without an explicit limit are unconstrained.
///
/// # Examples
///
/// ```
/// use mc_dfg::{ResourceConstraints, Op};
///
/// let rc = ResourceConstraints::new().with_limit(Op::Mul, 1);
/// assert_eq!(rc.limit(Op::Mul), Some(1));
/// assert_eq!(rc.limit(Op::Add), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceConstraints {
    per_op: BTreeMap<Op, usize>,
}

impl ResourceConstraints {
    /// No constraints.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits concurrent executions of `op` to `max` per step.
    #[must_use]
    pub fn with_limit(mut self, op: Op, max: usize) -> Self {
        self.per_op.insert(op, max);
        self
    }

    /// The limit for `op`, if any.
    #[must_use]
    pub fn limit(&self, op: Op) -> Option<usize> {
        self.per_op.get(&op).copied()
    }
}

/// Per-operation execution latencies in control steps (multi-cycle
/// functional units). Operations default to a single cycle.
///
/// # Examples
///
/// ```
/// use mc_dfg::{LatencyModel, Op};
///
/// let model = LatencyModel::unit().with_latency(Op::Div, 2);
/// assert_eq!(model.latency(Op::Div), 2);
/// assert_eq!(model.latency(Op::Add), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyModel {
    per_op: BTreeMap<Op, u32>,
}

impl LatencyModel {
    /// Every operation takes one cycle.
    #[must_use]
    pub fn unit() -> Self {
        Self::default()
    }

    /// A typical multi-cycle profile for small datapaths: a two-cycle
    /// sequential divider, everything else single-cycle.
    #[must_use]
    pub fn slow_divider() -> Self {
        Self::unit().with_latency(Op::Div, 2)
    }

    /// Sets the latency of `op` (clamped to at least 1).
    #[must_use]
    pub fn with_latency(mut self, op: Op, cycles: u32) -> Self {
        self.per_op.insert(op, cycles.max(1));
        self
    }

    /// The latency of `op` in steps.
    #[must_use]
    pub fn latency(&self, op: Op) -> u32 {
        self.per_op.get(&op).copied().unwrap_or(1)
    }

    /// The latency vector for a graph, indexed by node.
    #[must_use]
    pub fn for_dfg(&self, dfg: &Dfg) -> Vec<u32> {
        dfg.node_ids()
            .map(|n| self.latency(dfg.node(n).op()))
            .collect()
    }
}

/// ASAP scheduling under a latency model: every node starts as soon as
/// all its producers have completed.
#[must_use]
pub fn asap_with_latencies(dfg: &Dfg, model: &LatencyModel) -> Schedule {
    let lat = model.for_dfg(dfg);
    let mut steps = vec![0u32; dfg.num_nodes()];
    for &n in dfg.topological_order() {
        let earliest = dfg
            .preds(n)
            .map(|p| steps[p.index()] + lat[p.index()])
            .max()
            .unwrap_or(1);
        steps[n.index()] = earliest;
    }
    let length = dfg
        .node_ids()
        .map(|n| steps[n.index()] + lat[n.index()] - 1)
        .max()
        .unwrap_or(1);
    Schedule::with_latencies(dfg, steps, length, lat)
        .expect("latency-aware ASAP is valid by construction")
}

/// ASAP step for every node (1-based), without building a `Schedule`.
fn asap_steps(dfg: &Dfg) -> Vec<u32> {
    let mut steps = vec![0u32; dfg.num_nodes()];
    for &n in dfg.topological_order() {
        let earliest = dfg
            .preds(n)
            .map(|p| steps[p.index()] + 1)
            .max()
            .unwrap_or(1);
        steps[n.index()] = earliest;
    }
    steps
}

/// The critical-path length of the graph in control steps.
#[must_use]
pub fn critical_path(dfg: &Dfg) -> u32 {
    asap_steps(dfg).into_iter().max().unwrap_or(0)
}

/// As-soon-as-possible schedule. Every node runs at the earliest step its
/// dependences allow; the length is the critical path.
///
/// # Examples
///
/// ```
/// use mc_dfg::{DfgBuilder, Op, scheduler::asap};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("chain", 4);
/// let a = b.input("a");
/// let s = b.op(Op::Add, a, a);
/// let d = b.op(Op::Sub, s, a);
/// b.mark_output(d);
/// let g = b.finish()?;
/// let sched = asap(&g);
/// assert_eq!(sched.length(), 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn asap(dfg: &Dfg) -> Schedule {
    let steps = asap_steps(dfg);
    let length = steps.iter().copied().max().unwrap_or(1);
    Schedule::new(dfg, steps, length).expect("ASAP schedule is valid by construction")
}

/// As-late-as-possible schedule within `latency` steps.
///
/// # Errors
///
/// Returns [`SchedulerError::LatencyTooShort`] if `latency` is below the
/// critical path.
pub fn alap(dfg: &Dfg, latency: u32) -> Result<Schedule, SchedulerError> {
    let cp = critical_path(dfg);
    if latency < cp {
        return Err(SchedulerError::LatencyTooShort {
            requested: latency,
            critical_path: cp,
        });
    }
    let mut steps = vec![0u32; dfg.num_nodes()];
    for &n in dfg.topological_order().iter().rev() {
        let latest = dfg
            .succs(n)
            .iter()
            .map(|s| steps[s.index()] - 1)
            .min()
            .unwrap_or(latency);
        steps[n.index()] = latest;
    }
    Ok(Schedule::new(dfg, steps, latency).expect("ALAP schedule is valid by construction"))
}

/// Resource-constrained list scheduling with critical-path (longest path to
/// any sink) priority: at each step, ready nodes are placed in priority
/// order until a resource class is exhausted.
///
/// # Errors
///
/// Returns [`SchedulerError::ImpossibleConstraint`] if some required
/// operation has a limit of zero.
pub fn list_schedule(
    dfg: &Dfg,
    constraints: &ResourceConstraints,
) -> Result<Schedule, SchedulerError> {
    for n in dfg.node_ids() {
        if constraints.limit(dfg.node(n).op()) == Some(0) {
            return Err(SchedulerError::ImpossibleConstraint(dfg.node(n).op()));
        }
    }
    // Priority: height = longest path from node to a sink (inclusive).
    let mut height = vec![1u32; dfg.num_nodes()];
    for &n in dfg.topological_order().iter().rev() {
        let h = dfg
            .succs(n)
            .iter()
            .map(|s| height[s.index()] + 1)
            .max()
            .unwrap_or(1);
        height[n.index()] = h;
    }
    let mut steps = vec![0u32; dfg.num_nodes()];
    let mut unscheduled = dfg.num_nodes();
    let mut t = 0u32;
    while unscheduled > 0 {
        t += 1;
        // Ready: unscheduled, all preds scheduled strictly before t.
        let mut ready: Vec<NodeId> = dfg
            .node_ids()
            .filter(|&n| {
                steps[n.index()] == 0
                    && dfg
                        .preds(n)
                        .all(|p| steps[p.index()] != 0 && steps[p.index()] < t)
            })
            .collect();
        ready.sort_by_key(|&n| std::cmp::Reverse(height[n.index()]));
        let mut used: BTreeMap<Op, usize> = BTreeMap::new();
        for n in ready {
            let op = dfg.node(n).op();
            let u = used.entry(op).or_insert(0);
            if constraints.limit(op).is_none_or(|lim| *u < lim) {
                steps[n.index()] = t;
                *u += 1;
                unscheduled -= 1;
            }
        }
    }
    Ok(Schedule::new(dfg, steps, t).expect("list schedule is valid by construction"))
}

/// Resource class used by the force-directed distribution graphs: expensive
/// (multiply/divide) units are balanced separately from cheap ALU ops, the
/// classic Paulin–Knight grouping.
fn fds_class(op: Op) -> usize {
    usize::from(op.is_expensive())
}

/// Time-constrained force-directed scheduling (Paulin & Knight): balances
/// the expected concurrency (distribution graphs) of expensive and cheap
/// operation classes across `latency` steps by repeatedly fixing the
/// assignment with the lowest force.
///
/// # Errors
///
/// Returns [`SchedulerError::LatencyTooShort`] if `latency` is below the
/// critical path.
pub fn force_directed(dfg: &Dfg, latency: u32) -> Result<Schedule, SchedulerError> {
    let cp = critical_path(dfg);
    if latency < cp {
        return Err(SchedulerError::LatencyTooShort {
            requested: latency,
            critical_path: cp,
        });
    }
    let nn = dfg.num_nodes();
    // Mutable frames [lo, hi] per node; fixing a node collapses its frame.
    let mut lo = asap_steps(dfg);
    let mut hi = {
        let alap_sched = alap(dfg, latency)?;
        dfg.node_ids()
            .map(|n| alap_sched.step_of(n))
            .collect::<Vec<_>>()
    };
    let mut fixed = vec![false; nn];

    // Propagates frame tightening through dependences until a fixpoint.
    let propagate = |lo: &mut Vec<u32>, hi: &mut Vec<u32>| loop {
        let mut changed = false;
        for &n in dfg.topological_order() {
            let min_lo = dfg.preds(n).map(|p| lo[p.index()] + 1).max().unwrap_or(1);
            if lo[n.index()] < min_lo {
                lo[n.index()] = min_lo;
                changed = true;
            }
        }
        for &n in dfg.topological_order().iter().rev() {
            let max_hi = dfg
                .succs(n)
                .iter()
                .map(|s| hi[s.index()].saturating_sub(1))
                .min()
                .unwrap_or(latency);
            if hi[n.index()] > max_hi {
                hi[n.index()] = max_hi;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    };
    propagate(&mut lo, &mut hi);

    let distribution = |lo: &[u32], hi: &[u32]| -> [Vec<f64>; 2] {
        let mut dg = [
            vec![0.0; latency as usize + 1],
            vec![0.0; latency as usize + 1],
        ];
        for n in dfg.node_ids() {
            let class = fds_class(dfg.node(n).op());
            let (a, b) = (lo[n.index()], hi[n.index()]);
            let p = 1.0 / f64::from(b - a + 1);
            for t in a..=b {
                dg[class][t as usize] += p;
            }
        }
        dg
    };

    for _ in 0..nn {
        let dg = distribution(&lo, &hi);
        // Choose the unfixed (node, step) with minimal self-force.
        let mut best: Option<(f64, NodeId, u32)> = None;
        for n in dfg.node_ids() {
            if fixed[n.index()] {
                continue;
            }
            let class = fds_class(dfg.node(n).op());
            let (a, b) = (lo[n.index()], hi[n.index()]);
            let frame = f64::from(b - a + 1);
            let avg: f64 = (a..=b).map(|t| dg[class][t as usize]).sum::<f64>() / frame;
            for t in a..=b {
                // Self-force of fixing n at t: DG rises by (1 - p) at t and
                // falls by p elsewhere in the frame; classic approximation
                // is DG(t) - average DG over the frame.
                let force = dg[class][t as usize] - avg;
                let better = match best {
                    None => true,
                    Some((bf, bn, bt)) => {
                        force < bf - 1e-12 || ((force - bf).abs() <= 1e-12 && (n, t) < (bn, bt))
                    }
                };
                if better {
                    best = Some((force, n, t));
                }
            }
        }
        let (_, n, t) = best.expect("an unfixed node exists");
        lo[n.index()] = t;
        hi[n.index()] = t;
        fixed[n.index()] = true;
        propagate(&mut lo, &mut hi);
    }
    Ok(Schedule::new(dfg, lo, latency).expect("force-directed schedule is valid by construction"))
}

/// Phase-affine scheduling — an extension beyond the paper, which assumes
/// the schedule is fixed before clock assignment. Under an `n`-clock
/// scheme, an operation whose operands were written in a *different*
/// partition costs combinational power there (§3.2); this scheduler
/// delays each operation (within a slack budget) until a step owned by
/// the partition of its most expensive operand, so reads stay
/// in-partition.
///
/// `stretch` bounds the schedule-length increase over ASAP in steps; with
/// `stretch = 0` the result equals ASAP.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn phase_affine(dfg: &Dfg, n: u32, stretch: u32) -> Schedule {
    assert!(n >= 1, "at least one clock");
    let phase_of = |t: u32| (t - 1) % n + 1;
    let asap_len = critical_path(dfg);
    let budget = asap_len + stretch;
    // Longest path (in steps, inclusive) from each node to any sink: a
    // node placed at step t forces a schedule length of at least
    // t + height - 1, which is what the budget must bound.
    let mut height = vec![1u32; dfg.num_nodes()];
    for &node in dfg.topological_order().iter().rev() {
        let h = dfg
            .succs(node)
            .iter()
            .map(|s| height[s.index()] + 1)
            .max()
            .unwrap_or(1);
        height[node.index()] = h;
    }
    let mut steps = vec![0u32; dfg.num_nodes()];
    for &node in dfg.topological_order() {
        let earliest = dfg
            .preds(node)
            .map(|p| steps[p.index()] + 1)
            .max()
            .unwrap_or(1);
        // Preferred partition: that of the operand produced by the most
        // expensive unit (stabilising a multiplier's consumer pays most);
        // ties broken toward the left operand. Operands that are primary
        // inputs impose no preference (they are stable all period).
        let mut pref: Option<u32> = None;
        let mut pref_cost = -1.0f64;
        for v in dfg.node(node).read_vars() {
            if let Some(p) = dfg.writer_of(v) {
                let cost = if dfg.node(p).op().is_expensive() {
                    2.0
                } else {
                    1.0
                };
                if cost > pref_cost {
                    pref_cost = cost;
                    pref = Some(phase_of(steps[p.index()]));
                }
            }
        }
        let chosen = match pref {
            Some(k) if n > 1 => {
                // Smallest step >= earliest in partition k, if it fits the
                // latency budget; otherwise fall back to the earliest step.
                let candidate = (earliest..earliest + n)
                    .find(|&t| phase_of(t) == k)
                    .expect("every n consecutive steps cover every phase");
                if candidate + height[node.index()] - 1 <= budget {
                    candidate
                } else {
                    earliest
                }
            }
            _ => earliest,
        };
        steps[node.index()] = chosen;
    }
    let length = steps.iter().copied().max().unwrap_or(1);
    Schedule::new(dfg, steps, length).expect("phase-affine schedule is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DfgBuilder;

    /// Two independent chains of length 2 sharing inputs:
    /// s1 = a+b @?, d1 = s1-a; s2 = a*b, d2 = s2*b.
    fn two_chains() -> Dfg {
        let mut b = DfgBuilder::new("chains", 4);
        let a = b.input("a");
        let c = b.input("c");
        let s1 = b.op_named("s1", Op::Add, a, c);
        let d1 = b.op_named("d1", Op::Sub, s1, a);
        let s2 = b.op_named("s2", Op::Mul, a, c);
        let d2 = b.op_named("d2", Op::Mul, s2, c);
        b.mark_output(d1);
        b.mark_output(d2);
        b.finish().unwrap()
    }

    #[test]
    fn asap_packs_to_critical_path() {
        let g = two_chains();
        let s = asap(&g);
        assert_eq!(s.length(), 2);
        assert_eq!(s.step_of(NodeId(0)), 1);
        assert_eq!(s.step_of(NodeId(1)), 2);
        assert_eq!(s.step_of(NodeId(2)), 1);
        assert_eq!(s.step_of(NodeId(3)), 2);
        assert_eq!(critical_path(&g), 2);
    }

    #[test]
    fn alap_pushes_late() {
        let g = two_chains();
        let s = alap(&g, 4).unwrap();
        assert_eq!(s.length(), 4);
        assert_eq!(s.step_of(NodeId(1)), 4);
        assert_eq!(s.step_of(NodeId(0)), 3);
    }

    #[test]
    fn alap_too_short_errors() {
        let g = two_chains();
        assert!(matches!(
            alap(&g, 1).unwrap_err(),
            SchedulerError::LatencyTooShort {
                critical_path: 2,
                ..
            }
        ));
    }

    #[test]
    fn list_schedule_respects_limits() {
        let g = two_chains();
        let rc = ResourceConstraints::new().with_limit(Op::Mul, 1);
        let s = list_schedule(&g, &rc).unwrap();
        // Never two multiplies in the same step.
        for t in 1..=s.length() {
            let muls = s
                .nodes_at_step(t)
                .into_iter()
                .filter(|&n| g.node(n).op() == Op::Mul)
                .count();
            assert!(muls <= 1, "step {t} has {muls} multiplies");
        }
    }

    #[test]
    fn list_schedule_without_limits_matches_asap_length() {
        let g = two_chains();
        let s = list_schedule(&g, &ResourceConstraints::new()).unwrap();
        assert_eq!(s.length(), critical_path(&g));
    }

    #[test]
    fn list_schedule_zero_limit_errors() {
        let g = two_chains();
        let rc = ResourceConstraints::new().with_limit(Op::Mul, 0);
        assert_eq!(
            list_schedule(&g, &rc).unwrap_err(),
            SchedulerError::ImpossibleConstraint(Op::Mul)
        );
    }

    #[test]
    fn force_directed_is_valid_and_balances() {
        let g = two_chains();
        let s = force_directed(&g, 4).unwrap();
        assert_eq!(s.length(), 4);
        // With latency 4 and two independent 2-chains of multiplies/adds,
        // the expensive class should not exceed one multiply per step.
        for t in 1..=4 {
            let muls = s
                .nodes_at_step(t)
                .into_iter()
                .filter(|&n| g.node(n).op().is_expensive())
                .count();
            assert!(muls <= 1, "step {t} has {muls} expensive ops");
        }
    }

    #[test]
    fn force_directed_too_short_errors() {
        let g = two_chains();
        assert!(force_directed(&g, 1).is_err());
    }

    #[test]
    fn force_directed_at_critical_path_equals_asap_on_chains() {
        let g = two_chains();
        let s = force_directed(&g, 2).unwrap();
        // No slack: must equal ASAP.
        let a = asap(&g);
        for n in g.node_ids() {
            assert_eq!(s.step_of(n), a.step_of(n));
        }
    }

    #[test]
    fn phase_affine_with_single_clock_is_asap() {
        let g = two_chains();
        let s = phase_affine(&g, 1, 4);
        let a = asap(&g);
        for n in g.node_ids() {
            assert_eq!(s.step_of(n), a.step_of(n));
        }
    }

    #[test]
    fn phase_affine_zero_stretch_is_asap_length() {
        let g = two_chains();
        let s = phase_affine(&g, 2, 0);
        assert_eq!(s.length(), critical_path(&g));
    }

    #[test]
    fn phase_affine_aligns_consumer_with_producer_partition() {
        // Chain m = a*a @1 ; y = m+a — ASAP puts y at step 2 (phase 2);
        // phase-affine delays it to step 3 (phase 1, the multiplier's
        // partition).
        let mut b = DfgBuilder::new("align", 4);
        let a = b.input("a");
        let m = b.op_named("m", Op::Mul, a, a);
        let y = b.op_named("y", Op::Add, m, a);
        b.mark_output(y);
        let g = b.finish().unwrap();
        let s = phase_affine(&g, 2, 2);
        assert_eq!(s.step_of(NodeId(0)), 1);
        assert_eq!(s.step_of(NodeId(1)), 3, "consumer delayed into phase 1");
    }

    #[test]
    fn phase_affine_respects_budget() {
        let mut b = DfgBuilder::new("budget", 4);
        let a = b.input("a");
        let mut prev = b.op(Op::Mul, a, a);
        for _ in 0..5 {
            prev = b.op(Op::Mul, prev, a);
        }
        b.mark_output(prev);
        let g = b.finish().unwrap();
        let cp = critical_path(&g);
        for stretch in [0u32, 2, 6] {
            let s = phase_affine(&g, 3, stretch);
            assert!(
                s.length() <= cp + stretch,
                "stretch {stretch}: {} > {}",
                s.length(),
                cp + stretch
            );
        }
    }
}
