//! Data-flow graphs, schedules, schedulers, and the HLS benchmark
//! behaviours for the multi-clock low-power RTL synthesis system.
//!
//! This crate is the behavioural front end of the DAC'96 reproduction (see
//! the workspace `DESIGN.md`): a behaviour is captured as a single-
//! assignment [`Dfg`], scheduled into control steps with one of the
//! [`scheduler`]s (or a hand-written [`Schedule`]), and handed to the
//! allocators in `mc-alloc`.
//!
//! # Quick start
//!
//! ```
//! use mc_dfg::{DfgBuilder, Op, scheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // y = (a + b) * c
//! let mut b = DfgBuilder::new("demo", 4);
//! let a = b.input("a");
//! let bb = b.input("b");
//! let c = b.input("c");
//! let s = b.op_named("s", Op::Add, a, bb);
//! let y = b.op_named("y", Op::Mul, s, c);
//! b.mark_output(y);
//! let dfg = b.finish()?;
//!
//! let sched = scheduler::asap(&dfg);
//! assert_eq!(sched.length(), 2);
//!
//! // Variable lifetimes drive register/latch allocation downstream.
//! let lifetimes = sched.lifetimes(&dfg);
//! assert_eq!(lifetimes.len(), dfg.num_vars());
//! # Ok(())
//! # }
//! ```
//!
//! The paper's evaluation workloads are bundled in [`benchmarks`]:
//! [`benchmarks::facet`], [`benchmarks::hal`], [`benchmarks::biquad`] and
//! [`benchmarks::bandpass`] (Tables 1–4), plus the §2 motivating example.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchmarks;
mod graph;
mod op;
pub mod parse;
pub mod random;
mod schedule;
pub mod scheduler;

pub use graph::{Dfg, DfgBuilder, DfgError, Node, NodeId, Operand, VarId, VarKind, Variable};
pub use op::{FunctionSet, Op, ALL_OPS};
pub use schedule::{Lifetime, Schedule, ScheduleError};
pub use scheduler::{LatencyModel, ResourceConstraints, SchedulerError};
