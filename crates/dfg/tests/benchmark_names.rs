//! Error-path coverage for benchmark-name resolution: every
//! [`BenchmarkNameError`] variant is exercised, degenerate
//! `random:<nodes>:<seed>` specs are rejected with the actual reason,
//! and — via a PRNG-driven smoke test — no name, however mangled, makes
//! [`parse_name`] panic.

use mc_dfg::benchmarks::{
    all_benchmarks, by_name, parse_name, BenchmarkNameError, MAX_RANDOM_NODES,
};
use mc_prng::Xoshiro256;

fn random_spec_reason(name: &str) -> String {
    match parse_name(name) {
        Err(BenchmarkNameError::RandomSpec { reason, .. }) => reason,
        other => panic!("expected RandomSpec error for {name:?}, got {other:?}"),
    }
}

#[test]
fn bundled_names_resolve_and_match_the_catalog() {
    for bm in all_benchmarks() {
        let resolved = parse_name(bm.name()).expect("bundled names resolve");
        assert_eq!(resolved.name(), bm.name());
    }
}

#[test]
fn unknown_names_list_the_available_benchmarks() {
    match parse_name("no-such-benchmark") {
        Err(BenchmarkNameError::Unknown { name }) => assert_eq!(name, "no-such-benchmark"),
        other => panic!("expected Unknown, got {other:?}"),
    }
    let text = parse_name("no-such-benchmark").unwrap_err().to_string();
    assert!(text.contains("no-such-benchmark"), "{text}");
    assert!(text.contains("hal"), "{text}");
    assert!(text.contains("random:<nodes>:<seed>"), "{text}");
}

#[test]
fn valid_random_specs_are_deterministic() {
    let a = parse_name("random:16:7").expect("valid spec resolves");
    let b = parse_name("random:16:7").expect("valid spec resolves");
    assert_eq!(a.dfg.num_nodes(), b.dfg.num_nodes());
    assert_eq!(a.schedule.length(), b.schedule.length());
    assert!(by_name("random:16:7").is_some());
}

#[test]
fn degenerate_random_node_counts_are_typed_errors() {
    // Zero nodes.
    match parse_name("random:0:1") {
        Err(BenchmarkNameError::RandomNodes { nodes }) => assert_eq!(nodes, 0),
        other => panic!("expected RandomNodes, got {other:?}"),
    }
    // Just past the cap.
    match parse_name(&format!("random:{}:1", MAX_RANDOM_NODES + 1)) {
        Err(BenchmarkNameError::RandomNodes { nodes }) => {
            assert_eq!(nodes, MAX_RANDOM_NODES + 1);
        }
        other => panic!("expected RandomNodes, got {other:?}"),
    }
    // The cap itself is fine.
    assert!(parse_name(&format!("random:{MAX_RANDOM_NODES}:1")).is_ok());
    // The message names the supported range.
    let text = parse_name("random:0:1").unwrap_err().to_string();
    assert!(text.contains("out of range"), "{text}");
    assert!(text.contains(&MAX_RANDOM_NODES.to_string()), "{text}");
}

#[test]
fn malformed_random_specs_report_the_field_at_fault() {
    // Missing seed field.
    let reason = random_spec_reason("random:8");
    assert!(reason.contains("2 `:`-separated fields"), "{reason}");
    // Trailing fields must not be silently folded into the seed.
    let reason = random_spec_reason("random:8:5:junk");
    assert!(reason.contains("found 3"), "{reason}");
    // Empty spec.
    assert!(matches!(
        parse_name("random:"),
        Err(BenchmarkNameError::RandomSpec { .. })
    ));
    // Non-numeric node count and seed.
    let reason = random_spec_reason("random:lots:1");
    assert!(reason.contains("lots"), "{reason}");
    let reason = random_spec_reason("random:8:soon");
    assert!(reason.contains("soon"), "{reason}");
    // A node count that overflows u64 is malformed, not wrapped.
    let reason = random_spec_reason("random:99999999999999999999:1");
    assert!(reason.contains("not a 64-bit integer"), "{reason}");
    // Negative numbers don't parse as unsigned fields.
    assert!(matches!(
        parse_name("random:-4:1"),
        Err(BenchmarkNameError::RandomSpec { .. })
    ));
}

#[test]
fn by_name_mirrors_parse_name() {
    assert!(by_name("hal").is_some());
    for bad in [
        "no-such-benchmark",
        "random:0:1",
        "random:8",
        "random:8:5:junk",
        "random:",
        "random:99999999999999999999:1",
    ] {
        assert!(by_name(bad).is_none(), "{bad} must not resolve");
        assert!(parse_name(bad).is_err(), "{bad} must carry a reason");
    }
}

/// Feed the resolver deterministic garbage — random ASCII and mutations
/// of valid names — and require `Ok` or a typed `Err`, never a panic.
#[test]
fn fuzz_smoke_never_panics() {
    let valid = "random:16:7";
    let mut rng = Xoshiro256::seed_from_u64(0xBE4C_4A3E);
    for round in 0..2000 {
        let name = match round % 2 {
            // Printable ASCII soup, colon-heavy.
            0 => {
                let len = rng.below(40) as usize;
                (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.2) {
                            ':'
                        } else {
                            (0x20 + rng.below(0x5f) as u8) as char
                        }
                    })
                    .collect()
            }
            // A valid spec with random single-byte mutations.
            _ => {
                let mut bytes = valid.as_bytes().to_vec();
                for _ in 0..=rng.below(4) {
                    let i = rng.below(bytes.len() as u64) as usize;
                    bytes[i] = rng.below(128) as u8;
                }
                String::from_utf8_lossy(&bytes).into_owned()
            }
        };
        // Ok is fine (a mutation can stay valid); panicking is not.
        let _ = parse_name(&name);
    }
}
