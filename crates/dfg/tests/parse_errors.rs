//! Error-path coverage for the behavioural DSL parser: every
//! [`ParseError`] variant is exercised with a minimal source, the errors
//! carry usable locations and messages, and — via a PRNG-driven smoke
//! test — no input, however mangled, makes `parse_dfg` panic.

use mc_dfg::parse::{parse_dfg, ParseError};
use mc_dfg::DfgError;
use mc_prng::Xoshiro256;

fn syntax(source: &str) -> (usize, String) {
    match parse_dfg("t", source) {
        Err(ParseError::Syntax { line, message }) => (line, message),
        other => panic!("expected Syntax error for {source:?}, got {other:?}"),
    }
}

#[test]
fn syntax_errors_locate_the_offending_line() {
    let (line, message) = syntax("input a\nwidth 8\ny = a + a\noutput y");
    assert_eq!(line, 2, "width after definitions");
    assert!(message.contains("width"), "{message}");

    let (line, message) = syntax("width banana\ninput a\ny = a\noutput y");
    assert_eq!(line, 1);
    assert!(message.contains("bad width"), "{message}");

    let (line, _) = syntax("input a\ny = a +\noutput y");
    assert_eq!(line, 2, "dangling operator");

    let (line, _) = syntax("input a\ny = (a + a\noutput y");
    assert_eq!(line, 2, "unclosed parenthesis");

    let (line, _) = syntax("input a\nthis is not a statement\noutput y");
    assert_eq!(line, 2);
}

#[test]
fn undefined_names_are_reported_with_line_and_name() {
    match parse_dfg("t", "input a\ny = a + bogus\noutput y") {
        Err(ParseError::Undefined { line, name }) => {
            assert_eq!(line, 2);
            assert_eq!(name, "bogus");
        }
        other => panic!("expected Undefined, got {other:?}"),
    }
    // Self-reference is use-before-definition, not a cycle.
    assert!(matches!(
        parse_dfg("t", "input a\ny = y + a\noutput y"),
        Err(ParseError::Undefined { .. })
    ));
}

#[test]
fn graph_validation_errors_surface_as_parse_errors() {
    // Width outside the simulator's 1..=63 bit-packing range.
    assert!(matches!(
        parse_dfg("t", "width 0\ninput a\ny = a + a\noutput y"),
        Err(ParseError::Graph(DfgError::BadWidth(0)))
    ));
    assert!(matches!(
        parse_dfg("t", "width 64\ninput a\ny = a + a\noutput y"),
        Err(ParseError::Graph(DfgError::BadWidth(64)))
    ));
    // An empty behaviour has no nodes to schedule — with or without inputs.
    assert!(matches!(
        parse_dfg("t", ""),
        Err(ParseError::Graph(DfgError::Empty))
    ));
    assert!(matches!(
        parse_dfg("t", "input a, b"),
        Err(ParseError::Graph(DfgError::Empty))
    ));
    // Inputs reload at every computation boundary, so they can't double
    // as outputs.
    match parse_dfg("t", "input a\ny = a + a\noutput a") {
        Err(ParseError::Graph(DfgError::InputAsOutput(n))) => assert_eq!(n, "a"),
        other => panic!("expected InputAsOutput, got {other:?}"),
    }
}

#[test]
fn duplicate_definitions_violate_single_assignment() {
    // The parser enforces single assignment itself, before graph
    // validation, so the duplicate arrives as a located Syntax error.
    let (line, message) = syntax("input a\ny = a + a\ny = a - a\noutput y");
    assert_eq!(line, 3);
    assert!(message.contains("already defined"), "{message}");
}

#[test]
fn errors_render_human_readable_messages() {
    let err = parse_dfg("t", "input a\ny = a + bogus\noutput y").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("line 2"), "{text}");
    assert!(text.contains("bogus"), "{text}");

    let err = parse_dfg("t", "input a\ny = a +\noutput y").unwrap_err();
    assert!(err.to_string().starts_with("line 2:"), "{err}");
}

/// Feed the parser deterministic garbage — random bytes, random ASCII,
/// and mutations of a valid program — and require an `Err`, never a
/// panic. `parse_dfg` is the only path user-authored text enters the
/// system through, so totality here is a hard requirement.
#[test]
fn fuzz_smoke_never_panics() {
    let valid = "width 8\ninput a, b\nt0 = a + b\ny = t0 * b\noutput y\n";
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_F00D);
    for round in 0..2000 {
        let source = match round % 3 {
            // Arbitrary bytes (lossily decoded — parse takes &str).
            0 => {
                let len = rng.below(200) as usize;
                let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                String::from_utf8_lossy(&bytes).into_owned()
            }
            // Printable ASCII soup with newlines.
            1 => {
                let len = rng.below(200) as usize;
                (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.1) {
                            '\n'
                        } else {
                            (0x20 + rng.below(0x5f) as u8) as char
                        }
                    })
                    .collect()
            }
            // A valid program with random single-byte mutations.
            _ => {
                let mut bytes = valid.as_bytes().to_vec();
                for _ in 0..=rng.below(6) {
                    let i = rng.below(bytes.len() as u64) as usize;
                    bytes[i] = rng.below(128) as u8;
                }
                String::from_utf8_lossy(&bytes).into_owned()
            }
        };
        // Ok is fine (a mutation can stay valid); panicking is not.
        let _ = parse_dfg("fuzz", &source);
    }
}
