//! Netlist linting: structural and controller-consistency checks beyond
//! the hard validation of [`NetlistBuilder::finish`](crate::NetlistBuilder).
//!
//! Hard validation rejects netlists that cannot be simulated; lints flag
//! netlists that simulate but almost certainly don't mean what their
//! author intended — dead logic, never-captured memories, and above all
//! *off-phase loads*: a load enable asserted in a step not owned by the
//! memory's phase clock silently never captures.

use std::fmt;

use crate::component::CompId;
use crate::netlist::Netlist;

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Stylistic or informational.
    Info,
    /// Almost certainly a functional or power bug.
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// How serious the finding is.
    pub severity: Severity,
    /// The offending component, when one is identifiable.
    pub comp: Option<CompId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
        };
        match self.comp {
            Some(c) => write!(f, "{sev}: {c}: {}", self.message),
            None => write!(f, "{sev}: {}", self.message),
        }
    }
}

/// Runs all lints over `netlist`, returning findings sorted by severity
/// (warnings first) then component.
#[must_use]
pub fn lint(netlist: &Netlist) -> Vec<Lint> {
    let mut out = Vec::new();

    // Dead nets: driven but never read and not a primary output.
    let output_nets: Vec<_> = netlist.outputs().iter().map(|(_, n)| *n).collect();
    for n in netlist.net_ids() {
        if netlist.receivers_of(n).is_empty() && !output_nets.contains(&n) {
            out.push(Lint {
                severity: Severity::Warning,
                comp: Some(netlist.driver_of(n)),
                message: format!(
                    "net {} ({}) is driven but never read",
                    n,
                    netlist.net_name(n)
                ),
            });
        }
    }

    // Controller coverage per component.
    let words: Vec<_> = netlist
        .controller()
        .iter()
        .map(|(_, w)| w.clone())
        .collect();
    for c in netlist.component_ids() {
        let comp = netlist.component(c);
        match comp.kind() {
            crate::ComponentKind::Mem { phase, .. } => {
                let load_steps: Vec<u32> = netlist
                    .controller()
                    .iter()
                    .filter(|(_, w)| w.loads(c))
                    .map(|(t, _)| t)
                    .collect();
                if load_steps.is_empty() {
                    out.push(Lint {
                        severity: Severity::Warning,
                        comp: Some(c),
                        message: format!(
                            "memory `{}` is never loaded; it holds its reset value forever",
                            comp.label()
                        ),
                    });
                }
                for &t in &load_steps {
                    if !netlist.scheme().is_active(*phase, t) {
                        out.push(Lint {
                            severity: Severity::Warning,
                            comp: Some(c),
                            message: format!(
                                "memory `{}` has a load at step {t}, which {phase} does not \
                                 own — the capture silently never happens",
                                comp.label()
                            ),
                        });
                    }
                }
            }
            crate::ComponentKind::Alu { .. } if !words.iter().any(|w| w.fn_of(c).is_some()) => {
                out.push(Lint {
                    severity: Severity::Warning,
                    comp: Some(c),
                    message: format!("ALU `{}` never executes an operation", comp.label()),
                });
            }
            crate::ComponentKind::Mux { inputs } => {
                if inputs.len() >= 2 && !words.iter().any(|w| w.sel_of(c).is_some()) {
                    out.push(Lint {
                        severity: Severity::Warning,
                        comp: Some(c),
                        message: format!(
                            "mux `{}` has {} inputs but its select is never driven",
                            comp.label(),
                            inputs.len()
                        ),
                    });
                }
                if inputs.len() == 1 {
                    out.push(Lint {
                        severity: Severity::Info,
                        comp: Some(c),
                        message: format!(
                            "mux `{}` has a single input; a wire would do",
                            comp.label()
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    // Idle controller steps (informational — common in padded schedules).
    for (t, w) in netlist.controller().iter() {
        if w.mem_load.is_empty() && w.alu_fn.is_empty() {
            out.push(Lint {
                severity: Severity::Info,
                comp: None,
                message: format!("control step {t} performs no loads or operations"),
            });
        }
    }

    out.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.comp.cmp(&b.comp)));
    out
}

/// Convenience: only the warnings.
#[must_use]
pub fn warnings(netlist: &Netlist) -> Vec<Lint> {
    lint(netlist)
        .into_iter()
        .filter(|l| l.severity == Severity::Warning)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use mc_clocks::{ClockScheme, PhaseId};
    use mc_dfg::{FunctionSet, Op};
    use mc_tech::MemKind;

    /// A small, deliberately clean netlist.
    fn clean() -> Netlist {
        let scheme = ClockScheme::new(2).unwrap();
        let mut nb = NetlistBuilder::new("clean", 4, scheme, 2);
        let (_, a) = nb.add_input("a");
        let (r, rout) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r");
        let (alu, aout) = nb.add_alu(FunctionSet::single(Op::Add), a, rout, "alu");
        nb.set_mem_input(r, aout);
        nb.mark_output("y", rout);
        let w = nb.controller_mut().word_mut(1);
        w.alu_fn.insert(alu, Op::Add);
        w.mem_load.insert(r);
        nb.finish().unwrap()
    }

    #[test]
    fn clean_netlist_has_no_warnings() {
        let findings = warnings(&clean());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn idle_step_is_reported_as_info() {
        let findings = lint(&clean());
        assert!(findings
            .iter()
            .any(|l| l.severity == Severity::Info && l.message.contains("step 2")));
    }

    #[test]
    fn off_phase_load_is_flagged() {
        let scheme = ClockScheme::new(2).unwrap();
        let mut nb = NetlistBuilder::new("offphase", 4, scheme, 2);
        let (_, a) = nb.add_input("a");
        let (r, rout) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r");
        nb.set_mem_input(r, a);
        nb.mark_output("y", rout);
        // Phase 1 owns step 1; loading at step 2 never captures.
        nb.controller_mut().word_mut(2).mem_load.insert(r);
        let nl = nb.finish().unwrap();
        let findings = warnings(&nl);
        assert!(
            findings.iter().any(|l| l.message.contains("does not own")),
            "{findings:?}"
        );
    }

    #[test]
    fn never_loaded_mem_and_idle_alu_are_flagged() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("dead", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        let (r, rout) = nb.add_mem(MemKind::Dff, PhaseId::new(1), "r");
        let (_alu, aout) = nb.add_alu(FunctionSet::single(Op::Add), a, rout, "alu");
        nb.set_mem_input(r, aout);
        nb.mark_output("y", rout);
        let nl = nb.finish().unwrap();
        let findings = warnings(&nl);
        assert!(findings.iter().any(|l| l.message.contains("never loaded")));
        assert!(findings
            .iter()
            .any(|l| l.message.contains("never executes")));
    }

    #[test]
    fn dead_net_is_flagged() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("deadnet", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        nb.add_const(7); // drives a net nobody reads
        let (r, rout) = nb.add_mem(MemKind::Dff, PhaseId::new(1), "r");
        nb.set_mem_input(r, a);
        nb.mark_output("y", rout);
        nb.controller_mut().word_mut(1).mem_load.insert(r);
        let nl = nb.finish().unwrap();
        assert!(warnings(&nl)
            .iter()
            .any(|l| l.message.contains("never read")));
    }

    #[test]
    fn findings_render() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("r", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        let (r, rout) = nb.add_mem(MemKind::Dff, PhaseId::new(1), "r");
        nb.set_mem_input(r, a);
        nb.mark_output("y", rout);
        let nl = nb.finish().unwrap();
        let all = lint(&nl);
        assert!(!all.is_empty());
        assert!(all[0].to_string().contains("warning"));
    }
}
