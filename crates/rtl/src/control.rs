//! The controller: per-step control words for mux selects, ALU functions
//! and memory load enables, plus the power-management mode of a design.
//!
//! The controller is a Moore FSM that cycles through the schedule's
//! control steps; one computation of the behaviour takes one full cycle of
//! the controller. Control values may be *unspecified* in a step
//! (don't-care); whether an unspecified line holds its previous value
//! (latched control lines, the paper's §3.2 suggestion 2) or falls back to
//! a default is chosen by the [`ControlPolicy`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mc_dfg::Op;

use crate::component::{AluId, CompId, MemId, MuxId};

/// The control values asserted during one control step.
///
/// The maps are keyed by kind-typed component references, so a word can
/// only ever assert a select on a mux, a function on an ALU and a load on
/// a memory element. Typed ids come from the
/// [`NetlistBuilder`](crate::NetlistBuilder) `add_*` methods; readers
/// holding a bare [`CompId`] use the `*_of` accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControlWord {
    /// Selected data input per mux (absent ⇒ don't-care).
    pub mux_sel: BTreeMap<MuxId, usize>,
    /// Executed function per ALU (absent ⇒ ALU idle this step).
    pub alu_fn: BTreeMap<AluId, Op>,
    /// Memory elements whose load enable is asserted this step.
    pub mem_load: BTreeSet<MemId>,
}

impl ControlWord {
    /// An all-don't-care word.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The select asserted on component `c` this step, if `c` is a mux
    /// with an explicit select.
    #[must_use]
    pub fn sel_of(&self, c: CompId) -> Option<usize> {
        self.mux_sel.get(&MuxId(c)).copied()
    }

    /// The function asserted on component `c` this step, if `c` is an
    /// ALU named explicitly.
    #[must_use]
    pub fn fn_of(&self, c: CompId) -> Option<Op> {
        self.alu_fn.get(&AluId(c)).copied()
    }

    /// Whether component `c`'s load enable is asserted this step.
    #[must_use]
    pub fn loads(&self, c: CompId) -> bool {
        self.mem_load.contains(&MemId(c))
    }

    /// Whether the ALU `c` executes an operation this step.
    #[must_use]
    pub fn alu_active(&self, c: AluId) -> bool {
        self.alu_fn.contains_key(&c)
    }
}

/// How unspecified (don't-care) control lines behave between uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ControlPolicy {
    /// The line holds its previous value — the paper's *latched control
    /// lines* (§3.2): mux selects stay stable between a partition's
    /// adjacent clock pulses, so idle partitions see no input changes.
    #[default]
    Hold,
    /// The line returns to a default (select 0, function = first in set)
    /// when unspecified — a controller synthesised without latching, which
    /// toggles control lines and downstream muxes needlessly.
    Zero,
}

/// The power-management mechanisms active in a design. Combinations
/// reproduce the paper's five design styles (see `mc-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PowerMode {
    /// Gate memory-element clocks: a memory element receives a clock pulse
    /// only in steps where its load enable is asserted (the conventional
    /// gated-clock technique of the paper's reference \[10\]).
    pub gated_mem_clocks: bool,
    /// Operand isolation: when an ALU is idle in a step, its input ports
    /// are frozen so no combinational power is consumed ("extra logic to
    /// isolate ALUs", §2.2).
    pub operand_isolation: bool,
    /// Behaviour of unspecified control lines.
    pub control_policy: ControlPolicy,
}

impl PowerMode {
    /// No power management: clocks toggle everywhere, every step; control
    /// lines fall to defaults. The paper's "Conven. Alloc. (Non-Gated
    /// Clock)" row.
    #[must_use]
    pub fn non_gated() -> Self {
        PowerMode {
            gated_mem_clocks: false,
            operand_isolation: false,
            control_policy: ControlPolicy::Zero,
        }
    }

    /// Conventional power management: gated clocks plus ALU operand
    /// isolation. The paper's "Conven. Alloc. (Gated Clock)" row.
    #[must_use]
    pub fn gated() -> Self {
        PowerMode {
            gated_mem_clocks: true,
            operand_isolation: true,
            control_policy: ControlPolicy::Zero,
        }
    }

    /// The multi-clock scheme's mode: phase clocks do the gating work, and
    /// control lines are latched between a partition's pulses (§3.2).
    #[must_use]
    pub fn multiclock() -> Self {
        PowerMode {
            gated_mem_clocks: false,
            operand_isolation: false,
            control_policy: ControlPolicy::Hold,
        }
    }
}

impl fmt::Display for PowerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gated={} isolation={} control={:?}",
            self.gated_mem_clocks, self.operand_isolation, self.control_policy
        )
    }
}

/// The controller FSM: one [`ControlWord`] per control step, cycled with
/// period `len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Controller {
    words: Vec<ControlWord>,
}

impl Controller {
    /// A controller with `steps` all-don't-care words.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    #[must_use]
    pub fn new(steps: u32) -> Self {
        assert!(steps >= 1, "a controller needs at least one step");
        Controller {
            words: vec![ControlWord::new(); steps as usize],
        }
    }

    /// Number of control steps (the period).
    #[must_use]
    pub fn len(&self) -> u32 {
        self.words.len() as u32
    }

    /// Always false (a controller has ≥ 1 step); provided for API
    /// completeness alongside [`Controller::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The word for 1-based step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is 0 or beyond the period.
    #[must_use]
    pub fn word(&self, t: u32) -> &ControlWord {
        assert!(t >= 1, "control steps are 1-based");
        &self.words[(t - 1) as usize]
    }

    /// Mutable access to the word for 1-based step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is 0 or beyond the period.
    pub fn word_mut(&mut self, t: u32) -> &mut ControlWord {
        assert!(t >= 1, "control steps are 1-based");
        &mut self.words[(t - 1) as usize]
    }

    /// The word for 1-based step `t`, or `None` when `t` is 0 or beyond
    /// the period — the non-panicking twin of [`Controller::word`] for
    /// callers handling untrusted step numbers (e.g. the importer).
    #[must_use]
    pub fn get(&self, t: u32) -> Option<&ControlWord> {
        t.checked_sub(1).and_then(|i| self.words.get(i as usize))
    }

    /// All control words as a dense slice: `words()[i]` is the word of
    /// 1-based step `i + 1`. The index-addressed companion of
    /// [`Controller::word`], used by compiled simulation to walk the
    /// period without per-step bounds arithmetic.
    #[must_use]
    pub fn words(&self) -> &[ControlWord] {
        &self.words
    }

    /// Iterates `(step, word)` in step order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ControlWord)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as u32 + 1, w))
    }

    /// Total number of distinct control points referenced anywhere in the
    /// schedule (mux selects + ALU function selects + load enables), a
    /// proxy for controller output width.
    #[must_use]
    pub fn control_points(&self) -> usize {
        let mut muxes = BTreeSet::new();
        let mut alus = BTreeSet::new();
        let mut mems = BTreeSet::new();
        for w in &self.words {
            muxes.extend(w.mux_sel.keys().copied());
            alus.extend(w.alu_fn.keys().copied());
            mems.extend(w.mem_load.iter().copied());
        }
        muxes.len() + alus.len() + mems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_indexing_is_one_based() {
        let mut c = Controller::new(3);
        c.word_mut(2).mem_load.insert(MemId(CompId(7)));
        assert!(c.word(2).loads(CompId(7)));
        assert!(c.word(1).mem_load.is_empty());
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.get(2).is_some());
        assert!(c.get(0).is_none());
        assert!(c.get(4).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_step_controller_panics() {
        let _ = Controller::new(0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn word_zero_panics() {
        let _ = Controller::new(2).word(0);
    }

    #[test]
    fn control_points_counts_distinct_lines() {
        let mut c = Controller::new(2);
        c.word_mut(1).mux_sel.insert(MuxId(CompId(0)), 1);
        c.word_mut(2).mux_sel.insert(MuxId(CompId(0)), 0); // same mux
        c.word_mut(1).alu_fn.insert(AluId(CompId(1)), Op::Add);
        c.word_mut(2).mem_load.insert(MemId(CompId(2)));
        assert_eq!(c.control_points(), 3);
    }

    #[test]
    fn alu_active_reflects_word() {
        let mut c = Controller::new(1);
        c.word_mut(1).alu_fn.insert(AluId(CompId(4)), Op::Mul);
        assert!(c.word(1).alu_active(AluId(CompId(4))));
        assert!(!c.word(1).alu_active(AluId(CompId(5))));
        assert_eq!(c.word(1).fn_of(CompId(4)), Some(Op::Mul));
        assert!(!c.word(1).loads(CompId(4)));
        assert_eq!(c.word(1).sel_of(CompId(4)), None);
    }

    #[test]
    fn power_mode_presets() {
        assert!(!PowerMode::non_gated().gated_mem_clocks);
        assert!(PowerMode::gated().gated_mem_clocks);
        assert!(PowerMode::gated().operand_isolation);
        assert_eq!(PowerMode::multiclock().control_policy, ControlPolicy::Hold);
        assert_eq!(PowerMode::non_gated().control_policy, ControlPolicy::Zero);
    }

    #[test]
    fn iter_yields_steps_in_order() {
        let c = Controller::new(4);
        let steps: Vec<u32> = c.iter().map(|(t, _)| t).collect();
        assert_eq!(steps, vec![1, 2, 3, 4]);
    }
}
