//! Structural RTL netlists for the multi-clock low-power synthesis system:
//! components (ALUs, latches/DFFs, muxes), single-driver nets, clock
//! partitions, and the controller FSM.
//!
//! The model follows the paper's §3.1: the basic unit is the *functional
//! block* (two muxes → ALU → memory elements) and a *datapath module*
//! (DPM) is a set of functional blocks sharing one phase clock. Here the
//! netlist is stored flat — components plus nets — and the FB/DPM grouping
//! is derived ([`Netlist::dpm_groups`]) for reporting and export.
//!
//! # Building a netlist
//!
//! ```
//! use mc_rtl::{NetlistBuilder, PowerMode};
//! use mc_clocks::{ClockScheme, PhaseId};
//! use mc_dfg::{FunctionSet, Op};
//! use mc_tech::MemKind;
//!
//! # fn main() -> Result<(), mc_rtl::NetlistError> {
//! let scheme = ClockScheme::new(2).expect("2 clocks is valid");
//! let mut nb = NetlistBuilder::new("acc", 4, scheme, 2);
//! let (_, x) = nb.add_input("x");
//! // Accumulator register in partition 1, fed back through the ALU.
//! let (acc, acc_out) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "acc");
//! let (alu, sum) = nb.add_alu(FunctionSet::single(Op::Add), x, acc_out, "adder");
//! nb.set_mem_input(acc, sum);
//! nb.mark_output("total", acc_out);
//! nb.controller_mut().word_mut(1).alu_fn.insert(alu, Op::Add);
//! nb.controller_mut().word_mut(1).mem_load.insert(acc);
//! let netlist = nb.finish()?;
//! assert_eq!(netlist.stats().mem_cells, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod component;
mod control;
pub mod discipline;
pub mod export;
pub mod hier;
pub mod import;
pub mod lint;
mod netlist;
mod path;

pub use component::{AluId, CompId, Component, ComponentKind, MemId, MuxId, NetId};
pub use control::{ControlPolicy, ControlWord, Controller, PowerMode};
pub use netlist::{Netlist, NetlistBuilder, NetlistError, NetlistStats};
pub use path::{Path, PathError};
