//! The hierarchical netlist model: cells addressed by stable [`Path`]s
//! instead of dense ids, with a deterministic flattening into the
//! index-addressed [`Netlist`] that simulation and power estimation run
//! on.
//!
//! A [`Circuit`] is the tool-to-tool interchange form: importers build
//! one, transformation passes (e.g. the single-clock → multi-phase
//! retrofit in `mc-core`) rewrite it, and [`Circuit::flatten`] lowers it
//! to the flat model. Flattening is deterministic — cells are emitted in
//! path order (sources) and dependency order tie-broken by path
//! (combinational cells) — so two structurally equal circuits flatten to
//! byte-identical netlists regardless of insertion order.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mc_clocks::{ClockScheme, PhaseId};
use mc_dfg::{FunctionSet, Op};
use mc_tech::MemKind;

use crate::netlist::{Netlist, NetlistBuilder, NetlistError};
use crate::path::Path;

/// One cell of a hierarchical circuit. Data inputs reference the *paths*
/// of the driving cells (every cell drives exactly one value).
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A primary-input port named `port`.
    Input {
        /// The external port name.
        port: String,
    },
    /// A hard-wired constant.
    Const {
        /// The driven value (masked to the datapath width).
        value: u64,
    },
    /// A two-operand ALU.
    Alu {
        /// The operations the ALU implements.
        fs: FunctionSet,
        /// Path of the cell driving the left operand.
        a: Path,
        /// Path of the cell driving the right operand.
        b: Path,
    },
    /// A memory element.
    Mem {
        /// Latch or DFF.
        kind: MemKind,
        /// The phase clock driving this element.
        phase: PhaseId,
        /// Path of the cell driving the data input.
        input: Path,
    },
    /// A multiplexer over the named cells' outputs, in select order.
    Mux {
        /// Paths of the driving cells, in select order.
        inputs: Vec<Path>,
    },
}

impl Cell {
    /// The paths this cell reads, in port order.
    #[must_use]
    pub fn reads(&self) -> Vec<&Path> {
        match self {
            Cell::Input { .. } | Cell::Const { .. } => Vec::new(),
            Cell::Alu { a, b, .. } => vec![a, b],
            Cell::Mem { input, .. } => vec![input],
            Cell::Mux { inputs } => inputs.iter().collect(),
        }
    }

    fn is_combinational(&self) -> bool {
        matches!(self, Cell::Alu { .. } | Cell::Mux { .. })
    }
}

/// The control values of one step, keyed by cell path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CircuitWord {
    /// Selected input per mux path (absent ⇒ don't-care).
    pub mux_sel: BTreeMap<Path, usize>,
    /// Executed function per ALU path (absent ⇒ idle).
    pub alu_fn: BTreeMap<Path, Op>,
    /// Memory cells whose load enable is asserted this step.
    pub mem_load: BTreeSet<Path>,
}

/// Errors detected while validating or flattening a [`Circuit`].
#[derive(Debug, Clone, PartialEq)]
pub enum HierError {
    /// `cell` reads `missing`, which names no cell of the circuit.
    DanglingRef {
        /// The reading cell.
        cell: Path,
        /// The missing driver path.
        missing: Path,
    },
    /// The combinational cells contain a cycle through `cell`.
    CombinationalCycle(Path),
    /// A control word targets `cell` with a value only valid on another
    /// cell kind (e.g. a load on an ALU).
    BadControl {
        /// The 1-based control step.
        step: u32,
        /// The mis-targeted cell (or unknown path).
        cell: Path,
        /// Human-readable explanation.
        reason: String,
    },
    /// A primary output references a path that names no cell.
    BadOutput(String, Path),
    /// The circuit has no control steps.
    NoSteps,
    /// A cell's path does not round-trip through the flat builder's
    /// deterministic path derivation (e.g. an [`Cell::Input`] whose leaf
    /// is not the sanitized port name).
    PathMismatch {
        /// The path recorded in the circuit.
        expected: Path,
        /// The path the flat builder derived.
        derived: Path,
    },
    /// The flat builder rejected the lowered netlist.
    Netlist(NetlistError),
}

impl fmt::Display for HierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierError::DanglingRef { cell, missing } => {
                write!(f, "cell {cell} reads {missing}, which does not exist")
            }
            HierError::CombinationalCycle(p) => {
                write!(f, "combinational cycle through cell {p}")
            }
            HierError::BadControl { step, cell, reason } => {
                write!(f, "bad control at step {step} for {cell}: {reason}")
            }
            HierError::BadOutput(name, p) => {
                write!(f, "output `{name}` references missing cell {p}")
            }
            HierError::NoSteps => write!(f, "circuit has no control steps"),
            HierError::PathMismatch { expected, derived } => {
                write!(f, "path {expected} does not replay (derived {derived})")
            }
            HierError::Netlist(e) => write!(f, "flattened netlist invalid: {e}"),
        }
    }
}

impl std::error::Error for HierError {}

impl From<NetlistError> for HierError {
    fn from(e: NetlistError) -> Self {
        HierError::Netlist(e)
    }
}

/// A hierarchical, path-addressed circuit with its controller schedule.
///
/// Cells live in a [`BTreeMap`] keyed by path, so iteration order — and
/// therefore [`Circuit::flatten`] — is independent of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Design name.
    pub name: String,
    /// Datapath bit width.
    pub width: u8,
    /// The clock scheme the design runs under.
    pub scheme: ClockScheme,
    /// All cells, keyed by stable path.
    pub cells: BTreeMap<Path, Cell>,
    /// One control word per step; `words[i]` is step `i + 1`.
    pub words: Vec<CircuitWord>,
    /// Primary outputs: `(port name, driving cell)` in declaration order.
    pub outputs: Vec<(String, Path)>,
}

impl Circuit {
    /// An empty circuit with `steps` all-don't-care control words.
    #[must_use]
    pub fn new(name: &str, width: u8, scheme: ClockScheme, steps: u32) -> Self {
        Circuit {
            name: name.to_owned(),
            width,
            scheme,
            cells: BTreeMap::new(),
            words: vec![CircuitWord::default(); steps as usize],
            outputs: Vec::new(),
        }
    }

    /// Lifts a flat netlist into the hierarchical model: one cell per
    /// component at the component's recorded path, control words re-keyed
    /// by path. `flatten` of the result reproduces a netlist with the same
    /// structure, controller and outputs.
    #[must_use]
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let path_of_net =
            |n: crate::component::NetId| netlist.component(netlist.driver_of(n)).path().clone();
        let mut cells = BTreeMap::new();
        for c in netlist.component_ids() {
            let comp = netlist.component(c);
            let cell = match comp.kind() {
                crate::ComponentKind::Input => Cell::Input {
                    port: comp.label().to_owned(),
                },
                crate::ComponentKind::Const { value } => Cell::Const { value: *value },
                crate::ComponentKind::Alu { fs, a, b } => Cell::Alu {
                    fs: *fs,
                    a: path_of_net(*a),
                    b: path_of_net(*b),
                },
                crate::ComponentKind::Mem { kind, phase, input } => Cell::Mem {
                    kind: *kind,
                    phase: *phase,
                    input: path_of_net(*input),
                },
                crate::ComponentKind::Mux { inputs } => Cell::Mux {
                    inputs: inputs.iter().map(|&n| path_of_net(n)).collect(),
                },
            };
            cells.insert(comp.path().clone(), cell);
        }
        let path_of = |c: crate::component::CompId| netlist.component(c).path().clone();
        let words = netlist
            .controller()
            .iter()
            .map(|(_, w)| CircuitWord {
                mux_sel: w
                    .mux_sel
                    .iter()
                    .map(|(m, &s)| (path_of(m.comp()), s))
                    .collect(),
                alu_fn: w
                    .alu_fn
                    .iter()
                    .map(|(a, &op)| (path_of(a.comp()), op))
                    .collect(),
                mem_load: w.mem_load.iter().map(|m| path_of(m.comp())).collect(),
            })
            .collect();
        let outputs = netlist
            .outputs()
            .iter()
            .map(|(name, n)| (name.clone(), path_of_net(*n)))
            .collect();
        Circuit {
            name: netlist.name().to_owned(),
            width: netlist.width(),
            scheme: netlist.scheme(),
            cells,
            words,
            outputs,
        }
    }

    /// Lowers the circuit to the flat, index-addressed [`Netlist`].
    ///
    /// Deterministic: primary inputs, constants and memory elements are
    /// emitted in path order, combinational cells in dependency order with
    /// ties broken by path, so insertion order into [`Circuit::cells`]
    /// never matters. Every emitted component keeps its cell's path
    /// (verified — a cell whose path cannot be replayed by the builder's
    /// derivation is rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`HierError`] for dangling references, combinational
    /// cycles, mis-typed control words, bad outputs, or any flat-netlist
    /// validation failure.
    pub fn flatten(&self) -> Result<Netlist, HierError> {
        if self.words.is_empty() {
            return Err(HierError::NoSteps);
        }
        // Check references up front so emission can assume closure.
        for (p, cell) in &self.cells {
            for r in cell.reads() {
                if !self.cells.contains_key(r) {
                    return Err(HierError::DanglingRef {
                        cell: p.clone(),
                        missing: r.clone(),
                    });
                }
            }
        }

        let mut nb =
            NetlistBuilder::new(&self.name, self.width, self.scheme, self.words.len() as u32);
        let mut nets: BTreeMap<&Path, crate::component::NetId> = BTreeMap::new();
        let mut mems: BTreeMap<&Path, crate::component::MemId> = BTreeMap::new();
        let mut alus: BTreeMap<&Path, crate::component::AluId> = BTreeMap::new();
        let mut muxes: BTreeMap<&Path, crate::component::MuxId> = BTreeMap::new();

        // Sets the builder scope to the parent of `p` and returns the leaf
        // to use as the label.
        fn rescope(nb: &mut NetlistBuilder, current: &mut Vec<String>, p: &Path) -> String {
            let segments: Vec<&str> = p.segments().collect();
            let (leaf, parent) = segments.split_last().expect("paths are non-empty");
            while current.len() > parent.len()
                || !current.iter().zip(parent.iter()).all(|(a, b)| a == b)
            {
                nb.pop_scope();
                current.pop();
            }
            for seg in &parent[current.len()..] {
                nb.push_scope(seg);
                current.push((*seg).to_owned());
            }
            (*leaf).to_owned()
        }
        let mut scope: Vec<String> = Vec::new();

        // Pass 1: sources (inputs, constants, memories) in path order.
        for (p, cell) in &self.cells {
            let id_net = match cell {
                Cell::Input { port } => {
                    let leaf = rescope(&mut nb, &mut scope, p);
                    let (id, net) = nb.add_input(port);
                    // The derived leaf must match the recorded one, which
                    // it does exactly when leaf == sanitize(port) and no
                    // sibling steals the name.
                    let _ = leaf;
                    Some((id, net))
                }
                Cell::Const { value } => {
                    let _ = rescope(&mut nb, &mut scope, p);
                    Some(nb.add_const(*value))
                }
                Cell::Mem { kind, phase, .. } => {
                    let leaf = rescope(&mut nb, &mut scope, p);
                    let (m, net) = nb.add_mem(*kind, *phase, &leaf);
                    mems.insert(p, m);
                    Some((m.comp(), net))
                }
                Cell::Alu { .. } | Cell::Mux { .. } => None,
            };
            if let Some((id, net)) = id_net {
                nets.insert(p, net);
                let derived = nb.path_of(id);
                if derived != p {
                    return Err(HierError::PathMismatch {
                        expected: p.clone(),
                        derived: derived.clone(),
                    });
                }
            }
        }

        // Pass 2: combinational cells in dependency order, ties by path
        // (Kahn's algorithm over a BTreeSet-ordered ready set).
        let comb: Vec<&Path> = self
            .cells
            .iter()
            .filter(|(_, c)| c.is_combinational())
            .map(|(p, _)| p)
            .collect();
        let mut indeg: BTreeMap<&Path, usize> = BTreeMap::new();
        let mut readers: BTreeMap<&Path, Vec<&Path>> = BTreeMap::new();
        for &p in &comb {
            let cell = &self.cells[p];
            let mut d = 0;
            for r in cell.reads() {
                if self.cells[r].is_combinational() {
                    d += 1;
                    readers.entry(self.key_of(r)).or_default().push(p);
                }
            }
            indeg.insert(p, d);
        }
        let mut ready: BTreeSet<&Path> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&p, _)| p)
            .collect();
        let mut emitted = 0usize;
        while let Some(&p) = ready.iter().next() {
            ready.remove(p);
            emitted += 1;
            let leaf = rescope(&mut nb, &mut scope, p);
            let (id, net) = match &self.cells[p] {
                Cell::Alu { fs, a, b } => {
                    let (alu, net) = nb.add_alu(*fs, nets[a], nets[b], &leaf);
                    alus.insert(p, alu);
                    (alu.comp(), net)
                }
                Cell::Mux { inputs } => {
                    let ins: Vec<_> = inputs.iter().map(|i| nets[i]).collect();
                    let (m, net) = nb.add_mux(ins, &leaf);
                    muxes.insert(p, m);
                    (m.comp(), net)
                }
                _ => unreachable!("comb holds only ALUs and muxes"),
            };
            nets.insert(p, net);
            let derived = nb.path_of(id);
            if derived != p {
                return Err(HierError::PathMismatch {
                    expected: p.clone(),
                    derived: derived.clone(),
                });
            }
            for &r in readers.get(p).into_iter().flatten() {
                let d = indeg.get_mut(r).expect("reader is combinational");
                *d -= 1;
                if *d == 0 {
                    ready.insert(r);
                }
            }
        }
        if emitted != comb.len() {
            let stuck = indeg
                .iter()
                .find(|(_, &d)| d > 0)
                .map(|(&p, _)| p.clone())
                .expect("cycle member exists");
            return Err(HierError::CombinationalCycle(stuck));
        }

        // Pass 3: memory data inputs (any reference, including forward).
        for (p, cell) in &self.cells {
            if let Cell::Mem { input, .. } = cell {
                nb.set_mem_input(mems[p], nets[input]);
            }
        }

        // Pass 4: controller, re-keyed by typed id.
        for (i, cw) in self.words.iter().enumerate() {
            let t = i as u32 + 1;
            let bad = |cell: &Path, reason: &str| HierError::BadControl {
                step: t,
                cell: cell.clone(),
                reason: reason.to_owned(),
            };
            let word = nb.controller_mut().word_mut(t);
            for (p, &s) in &cw.mux_sel {
                match muxes.get(p) {
                    Some(&m) => {
                        word.mux_sel.insert(m, s);
                    }
                    None => return Err(bad(p, "mux select on a non-mux")),
                }
            }
            for (p, &op) in &cw.alu_fn {
                match alus.get(p) {
                    Some(&a) => {
                        word.alu_fn.insert(a, op);
                    }
                    None => return Err(bad(p, "ALU function on a non-ALU")),
                }
            }
            for p in &cw.mem_load {
                match mems.get(p) {
                    Some(&m) => {
                        word.mem_load.insert(m);
                    }
                    None => return Err(bad(p, "load enable on a non-memory")),
                }
            }
        }

        // Pass 5: outputs.
        for (name, p) in &self.outputs {
            match nets.get(p) {
                Some(&n) => nb.mark_output(name, n),
                None => return Err(HierError::BadOutput(name.clone(), p.clone())),
            }
        }

        Ok(nb.finish()?)
    }

    /// Returns the map-owned key equal to `p` (so borrows in the Kahn
    /// walk all live as long as `self`).
    fn key_of<'a>(&'a self, p: &Path) -> &'a Path {
        self.cells
            .get_key_value(p)
            .map(|(k, _)| k)
            .expect("reference closure checked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use mc_clocks::{ClockScheme, PhaseId};
    use mc_dfg::Op;

    fn sample_netlist() -> Netlist {
        let scheme = ClockScheme::new(2).unwrap();
        let mut nb = NetlistBuilder::new("sample", 8, scheme, 2);
        nb.push_scope("io");
        let (_, a) = nb.add_input("a");
        let (_, b) = nb.add_input("b");
        nb.pop_scope();
        let (_, k) = nb.add_const(3);
        nb.push_scope("regs");
        let (r1, r1out) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r1");
        let (r2, r2out) = nb.add_mem(MemKind::Latch, PhaseId::new(2), "r2");
        nb.pop_scope();
        let (m, mout) = nb.add_mux(vec![a, k, r2out], "m0");
        let (alu, aout) = nb.add_alu(FunctionSet::from_ops([Op::Add, Op::Mul]), mout, b, "alu0");
        nb.set_mem_input(r1, aout);
        nb.set_mem_input(r2, r1out);
        nb.mark_output("y", r2out);
        {
            let w = nb.controller_mut().word_mut(1);
            w.mux_sel.insert(m, 0);
            w.alu_fn.insert(alu, Op::Add);
            w.mem_load.insert(r1);
        }
        nb.controller_mut().word_mut(2).mem_load.insert(r2);
        nb.finish().unwrap()
    }

    #[test]
    fn netlist_round_trips_through_circuit() {
        let nl = sample_netlist();
        let circuit = Circuit::from_netlist(&nl);
        let back = circuit.flatten().unwrap();
        // Flattening canonicalises component order (sources in path
        // order), so compare structure, not ids.
        assert_eq!(back.stats(), nl.stats());
        assert_eq!(back.outputs().len(), nl.outputs().len());
        assert_eq!(back.controller().len(), nl.controller().len());
        assert_eq!(
            back.controller().control_points(),
            nl.controller().control_points()
        );
        for c in nl.component_ids() {
            let p = nl.component(c).path();
            let b = back.find(p).expect("every path survives");
            assert_eq!(
                std::mem::discriminant(nl.component(c).kind()),
                std::mem::discriminant(back.component(b).kind()),
            );
        }
        // A second trip is a fixpoint: the canonical form re-exports byte
        // for byte.
        let again = Circuit::from_netlist(&back).flatten().unwrap();
        assert_eq!(
            crate::export::to_vhdl(&again),
            crate::export::to_vhdl(&back),
            "flatten ∘ from_netlist is idempotent on canonical netlists"
        );
    }

    #[test]
    fn flatten_is_insertion_order_independent() {
        let nl = sample_netlist();
        let c1 = Circuit::from_netlist(&nl);
        // Rebuild the circuit inserting cells in reverse path order.
        let mut c2 = Circuit::new(&c1.name, c1.width, c1.scheme, c1.words.len() as u32);
        for (p, cell) in c1.cells.iter().rev() {
            c2.cells.insert(p.clone(), cell.clone());
        }
        c2.words = c1.words.clone();
        c2.outputs = c1.outputs.clone();
        assert_eq!(
            crate::export::to_vhdl(&c1.flatten().unwrap()),
            crate::export::to_vhdl(&c2.flatten().unwrap())
        );
    }

    #[test]
    fn dangling_reference_is_rejected() {
        let nl = sample_netlist();
        let mut c = Circuit::from_netlist(&nl);
        c.cells.insert(
            Path::parse("bad").unwrap(),
            Cell::Mem {
                kind: MemKind::Dff,
                phase: PhaseId::new(1),
                input: Path::parse("no.such.cell").unwrap(),
            },
        );
        assert!(matches!(
            c.flatten().unwrap_err(),
            HierError::DanglingRef { .. }
        ));
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let scheme = ClockScheme::single();
        let mut c = Circuit::new("cyc", 4, scheme, 1);
        let a = Path::parse("a").unwrap();
        let m1 = Path::parse("m1").unwrap();
        let m2 = Path::parse("m2").unwrap();
        c.cells.insert(a.clone(), Cell::Input { port: "a".into() });
        c.cells.insert(
            m1.clone(),
            Cell::Mux {
                inputs: vec![a.clone(), m2.clone()],
            },
        );
        c.cells.insert(
            m2.clone(),
            Cell::Mux {
                inputs: vec![m1.clone()],
            },
        );
        c.outputs.push(("y".into(), m2.clone()));
        assert!(matches!(
            c.flatten().unwrap_err(),
            HierError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn mistyped_control_is_rejected() {
        let nl = sample_netlist();
        let mut c = Circuit::from_netlist(&nl);
        // Assert a load on the ALU's path.
        c.words[0].mem_load.insert(Path::parse("alu0").unwrap());
        let err = c.flatten().unwrap_err();
        assert!(
            matches!(err, HierError::BadControl { step: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("non-memory"));
    }

    #[test]
    fn bad_output_is_rejected() {
        let nl = sample_netlist();
        let mut c = Circuit::from_netlist(&nl);
        c.outputs.push(("z".into(), Path::parse("ghost").unwrap()));
        assert!(matches!(c.flatten().unwrap_err(), HierError::BadOutput(..)));
    }

    #[test]
    fn no_steps_is_rejected() {
        let c = Circuit::new("empty", 4, ClockScheme::single(), 1);
        let mut c = c;
        c.words.clear();
        assert_eq!(c.flatten().unwrap_err(), HierError::NoSteps);
    }
}
