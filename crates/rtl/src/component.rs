//! Netlist components: ALUs, memory elements, muxes, constant drivers and
//! primary-input ports.

use std::fmt;

use mc_clocks::PhaseId;
use mc_dfg::FunctionSet;
use mc_tech::MemKind;

use crate::path::Path;

/// Identifier of a component within one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// Dense index (`0..netlist.num_components()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id at dense index `i` — inverse of [`CompId::index`], for
    /// index-addressed walks over [`Netlist::components`].
    ///
    /// [`Netlist::components`]: crate::Netlist::components
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        CompId(u32::try_from(i).expect("component index fits in u32"))
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Defines a kind-typed component reference: a [`CompId`] that is
/// guaranteed (by construction) to name a component of one specific kind.
/// Builders hand them out, control words are keyed by them, so a load
/// enable can only ever target a memory element and a mux select can only
/// ever target a mux — the wrong-kind control errors of the flat model
/// are unrepresentable in safe client code.
macro_rules! typed_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) CompId);

        impl $name {
            /// The untyped component id.
            #[must_use]
            pub fn comp(self) -> CompId {
                self.0
            }

            /// Dense index (`0..netlist.num_components()`).
            #[must_use]
            pub fn index(self) -> usize {
                self.0.index()
            }
        }

        impl From<$name> for CompId {
            fn from(id: $name) -> CompId {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }
    };
}

typed_id!(
    /// Reference to a memory element (latch or DFF).
    MemId
);
typed_id!(
    /// Reference to an ALU.
    AluId
);
typed_id!(
    /// Reference to a multiplexer.
    MuxId
);

/// Identifier of a net (a single-driver signal bundle of datapath width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Dense index (`0..netlist.num_nets()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// The behavioural kind of one component, with its port connectivity.
///
/// Every component drives exactly one output net; data inputs are nets.
/// Control inputs (mux select, ALU function select, memory load) come from
/// the [`Controller`](crate::Controller), not from nets.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentKind {
    /// A (possibly multi-function) ALU with two data ports.
    Alu {
        /// The operations this ALU can perform.
        fs: FunctionSet,
        /// Left operand net.
        a: NetId,
        /// Right operand net.
        b: NetId,
    },
    /// A memory element (latch or DFF) in a specific clock partition.
    Mem {
        /// Latch or DFF.
        kind: MemKind,
        /// The phase clock driving this element.
        phase: PhaseId,
        /// Data input net.
        input: NetId,
    },
    /// A `k`-input multiplexer (`k >= 1`; `k == 1` is a feed-through that
    /// the clean-up phase normally removes).
    Mux {
        /// Data input nets in select order.
        inputs: Vec<NetId>,
    },
    /// A hard-wired constant driver.
    Const {
        /// The driven value (masked to the datapath width).
        value: u64,
    },
    /// A primary-input port driven by the environment.
    Input,
}

/// A netlist component: kind, connectivity, output net, a stable
/// hierarchical path and a report label.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    pub(crate) kind: ComponentKind,
    pub(crate) out: NetId,
    pub(crate) path: Path,
    pub(crate) label: String,
}

impl Component {
    /// The component's kind and connectivity.
    #[must_use]
    pub fn kind(&self) -> &ComponentKind {
        &self.kind
    }

    /// The stable hierarchical path of this component (scope segments
    /// plus a uniquified leaf derived from the label). Unlike [`CompId`],
    /// the path survives export and re-import.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The net driven by this component.
    #[must_use]
    pub fn output(&self) -> NetId {
        self.out
    }

    /// The human-readable label used in reports and exports (e.g. the
    /// variable names merged into a register, or an ALU's function set).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The data-input nets of this component, in port order.
    #[must_use]
    pub fn data_inputs(&self) -> Vec<NetId> {
        match &self.kind {
            ComponentKind::Alu { a, b, .. } => vec![*a, *b],
            ComponentKind::Mem { input, .. } => vec![*input],
            ComponentKind::Mux { inputs } => inputs.clone(),
            ComponentKind::Const { .. } | ComponentKind::Input => Vec::new(),
        }
    }

    /// Whether this component is a memory element.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, ComponentKind::Mem { .. })
    }

    /// Whether this component is an ALU.
    #[must_use]
    pub fn is_alu(&self) -> bool {
        matches!(self.kind, ComponentKind::Alu { .. })
    }

    /// Whether this component is a mux.
    #[must_use]
    pub fn is_mux(&self) -> bool {
        matches!(self.kind, ComponentKind::Mux { .. })
    }

    /// Whether this component is combinational (recomputed every step).
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        matches!(
            self.kind,
            ComponentKind::Alu { .. } | ComponentKind::Mux { .. }
        )
    }

    /// The clock phase of a memory element, or `None` for everything else.
    #[must_use]
    pub fn mem_phase(&self) -> Option<PhaseId> {
        match self.kind {
            ComponentKind::Mem { phase, .. } => Some(phase),
            _ => None,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ComponentKind::Alu { fs, a, b } => {
                write!(f, "ALU{fs} ({a}, {b}) -> {} [{}]", self.out, self.label)
            }
            ComponentKind::Mem { kind, phase, input } => {
                let k = match kind {
                    MemKind::Latch => "LATCH",
                    MemKind::Dff => "DFF",
                };
                write!(f, "{k}@{phase} ({input}) -> {} [{}]", self.out, self.label)
            }
            ComponentKind::Mux { inputs } => {
                write!(f, "MUX{}(", inputs.len())?;
                for (i, n) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ") -> {} [{}]", self.out, self.label)
            }
            ComponentKind::Const { value } => {
                write!(f, "CONST #{value} -> {}", self.out)
            }
            ComponentKind::Input => write!(f, "INPUT -> {} [{}]", self.out, self.label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::Op;

    fn alu() -> Component {
        Component {
            kind: ComponentKind::Alu {
                fs: FunctionSet::from_ops([Op::Add, Op::Sub]),
                a: NetId(0),
                b: NetId(1),
            },
            out: NetId(2),
            path: Path::segment("alu0"),
            label: "alu0".into(),
        }
    }

    #[test]
    fn data_inputs_per_kind() {
        assert_eq!(alu().data_inputs(), vec![NetId(0), NetId(1)]);
        let mem = Component {
            kind: ComponentKind::Mem {
                kind: MemKind::Latch,
                phase: PhaseId::new(1),
                input: NetId(3),
            },
            out: NetId(4),
            path: Path::segment("r0"),
            label: "r0".into(),
        };
        assert_eq!(mem.data_inputs(), vec![NetId(3)]);
        let c = Component {
            kind: ComponentKind::Const { value: 3 },
            out: NetId(5),
            path: Path::segment("_3"),
            label: "#3".into(),
        };
        assert!(c.data_inputs().is_empty());
    }

    #[test]
    fn kind_predicates() {
        let a = alu();
        assert!(a.is_alu() && a.is_combinational() && !a.is_mem() && !a.is_mux());
        let mem = Component {
            kind: ComponentKind::Mem {
                kind: MemKind::Dff,
                phase: PhaseId::new(2),
                input: NetId(0),
            },
            out: NetId(1),
            path: Path::segment("r"),
            label: "r".into(),
        };
        assert!(mem.is_mem() && !mem.is_combinational());
        assert_eq!(mem.mem_phase(), Some(PhaseId::new(2)));
        assert_eq!(a.mem_phase(), None);
    }

    #[test]
    fn display_includes_connectivity() {
        let s = alu().to_string();
        assert!(s.contains("ALU(+-)"));
        assert!(s.contains("w0"));
        assert!(s.contains("w2"));
    }
}
