//! The structural netlist: components wired by single-driver nets, a
//! controller, and a clock scheme — the output of allocation and the input
//! to simulation, power estimation and export.

use std::collections::BTreeMap;
use std::fmt;

use mc_clocks::{ClockScheme, PhaseId};
use mc_dfg::FunctionSet;
use mc_tech::MemKind;

use crate::component::{AluId, CompId, Component, ComponentKind, MemId, MuxId, NetId};
use crate::control::Controller;
use crate::path::Path;

/// Sentinel for a memory input that has not been connected yet.
const UNCONNECTED: NetId = NetId(u32::MAX);

/// Errors detected while validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A memory element was never connected to a data source.
    UnconnectedMem(CompId),
    /// A component references a net that does not exist.
    DanglingNet(CompId, NetId),
    /// The combinational subgraph (muxes/ALUs) contains a cycle not broken
    /// by a memory element.
    CombinationalCycle(CompId),
    /// A controller word targets a component of the wrong kind or with an
    /// out-of-range value.
    BadControl {
        /// The 1-based control step.
        step: u32,
        /// The component targeted.
        comp: CompId,
        /// Human-readable explanation.
        reason: String,
    },
    /// A memory element's phase exceeds the clock scheme.
    PhaseOutOfRange(CompId, PhaseId),
    /// A primary output references a net that does not exist.
    BadOutput(String),
    /// A mux was declared with no inputs.
    EmptyMux(CompId),
    /// A component addressed as a memory element is not one.
    NotAMemory(CompId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnconnectedMem(c) => write!(f, "memory {c} has no data input"),
            NetlistError::DanglingNet(c, n) => write!(f, "component {c} references missing {n}"),
            NetlistError::CombinationalCycle(c) => {
                write!(f, "combinational cycle through component {c}")
            }
            NetlistError::BadControl { step, comp, reason } => {
                write!(f, "bad control at step {step} for {comp}: {reason}")
            }
            NetlistError::PhaseOutOfRange(c, p) => {
                write!(f, "memory {c} clocked by {p} outside the scheme")
            }
            NetlistError::BadOutput(name) => write!(f, "primary output `{name}` has no net"),
            NetlistError::EmptyMux(c) => write!(f, "mux {c} has no inputs"),
            NetlistError::NotAMemory(c) => write!(f, "component {c} is not a memory element"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Resource statistics in the shape of the paper's table columns: ALU
/// function sets, memory cells (words), and total mux data inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Function set of every ALU.
    pub alus: Vec<FunctionSet>,
    /// Number of memory elements (words), the "Mem. Cells" column.
    pub mem_cells: usize,
    /// Total data inputs over all muxes with ≥ 2 inputs, the "Mux In's"
    /// column.
    pub mux_inputs: usize,
    /// Number of muxes with ≥ 2 inputs.
    pub muxes: usize,
    /// Number of nets.
    pub nets: usize,
}

impl NetlistStats {
    /// Formats the ALU list the way the paper's tables do: `2(+),1(*+)`.
    #[must_use]
    pub fn alu_summary(&self) -> String {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for fs in &self.alus {
            *counts.entry(fs.to_string()).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(fs, n)| format!("{n}{fs}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A validated structural netlist.
///
/// Built with [`NetlistBuilder`]; all structural invariants (single-driver
/// nets, acyclic combinational logic, well-typed control words) hold after
/// [`NetlistBuilder::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    width: u8,
    scheme: ClockScheme,
    components: Vec<Component>,
    net_names: Vec<String>,
    net_driver: Vec<CompId>,
    controller: Controller,
    inputs: Vec<(String, CompId)>,
    outputs: Vec<(String, NetId)>,
    comb_order: Vec<CompId>,
    path_index: BTreeMap<Path, CompId>,
}

impl Netlist {
    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Datapath bit width.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The clock scheme the design runs under.
    #[must_use]
    pub fn scheme(&self) -> ClockScheme {
        self.scheme
    }

    /// Number of components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// The component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this netlist.
    #[must_use]
    pub fn component(&self, c: CompId) -> &Component {
        &self.components[c.index()]
    }

    /// The component `c`, or `None` when the id belongs to another
    /// netlist — the non-panicking twin of [`Netlist::component`].
    #[must_use]
    pub fn get(&self, c: CompId) -> Option<&Component> {
        self.components.get(c.index())
    }

    /// Looks a component up by its stable hierarchical path.
    #[must_use]
    pub fn find(&self, path: &Path) -> Option<CompId> {
        self.path_index.get(path).copied()
    }

    /// The typed memory reference for `c`, if `c` is a memory element of
    /// this netlist.
    #[must_use]
    pub fn as_mem(&self, c: CompId) -> Option<MemId> {
        self.get(c).filter(|k| k.is_mem()).map(|_| MemId(c))
    }

    /// The typed ALU reference for `c`, if `c` is an ALU of this netlist.
    #[must_use]
    pub fn as_alu(&self, c: CompId) -> Option<AluId> {
        self.get(c).filter(|k| k.is_alu()).map(|_| AluId(c))
    }

    /// The typed mux reference for `c`, if `c` is a mux of this netlist.
    #[must_use]
    pub fn as_mux(&self, c: CompId) -> Option<MuxId> {
        self.get(c).filter(|k| k.is_mux()).map(|_| MuxId(c))
    }

    /// Iterates over all component ids.
    pub fn component_ids(&self) -> impl Iterator<Item = CompId> {
        (0..self.components.len() as u32).map(CompId)
    }

    /// All components as a dense slice, indexed by [`CompId::index`].
    ///
    /// This is the index-addressed access path used by compiled execution
    /// (e.g. the `mc-sim` kernel lowering), which walks components by
    /// position instead of chasing ids through [`Netlist::component`].
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.net_names.len() as u32).map(NetId)
    }

    /// The name of net `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this netlist.
    #[must_use]
    pub fn net_name(&self, n: NetId) -> &str {
        &self.net_names[n.index()]
    }

    /// The component driving net `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this netlist.
    #[must_use]
    pub fn driver_of(&self, n: NetId) -> CompId {
        self.net_driver[n.index()]
    }

    /// The components reading net `n` (receivers), in id order.
    #[must_use]
    pub fn receivers_of(&self, n: NetId) -> Vec<CompId> {
        self.component_ids()
            .filter(|&c| self.component(c).data_inputs().contains(&n))
            .collect()
    }

    /// The controller FSM.
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Primary inputs: `(name, input component)` in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[(String, CompId)] {
        &self.inputs
    }

    /// Primary outputs: `(name, net)` in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Combinational components (muxes, ALUs) in evaluation order: every
    /// component appears after all combinational components driving its
    /// inputs.
    #[must_use]
    pub fn combinational_order(&self) -> &[CompId] {
        &self.comb_order
    }

    /// The memory elements, in id order.
    pub fn mems(&self) -> impl Iterator<Item = MemId> + '_ {
        self.component_ids()
            .filter(|&c| self.component(c).is_mem())
            .map(MemId)
    }

    /// Resource statistics in the paper's table shape.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut alus = Vec::new();
        let mut mem_cells = 0;
        let mut mux_inputs = 0;
        let mut muxes = 0;
        for c in &self.components {
            match c.kind() {
                ComponentKind::Alu { fs, .. } => alus.push(*fs),
                ComponentKind::Mem { .. } => mem_cells += 1,
                ComponentKind::Mux { inputs } if inputs.len() >= 2 => {
                    mux_inputs += inputs.len();
                    muxes += 1;
                }
                _ => {}
            }
        }
        NetlistStats {
            alus,
            mem_cells,
            mux_inputs,
            muxes,
            nets: self.num_nets(),
        }
    }

    /// Groups components into the paper's datapath modules (Fig. 3b):
    /// memory elements by phase, each combinational component assigned to
    /// the phase of the memories it (transitively) feeds. Components
    /// feeding several phases are reported under the smallest such phase
    /// and flagged shared in the export.
    #[must_use]
    pub fn dpm_groups(&self) -> BTreeMap<PhaseId, Vec<CompId>> {
        let mut groups: BTreeMap<PhaseId, Vec<CompId>> = BTreeMap::new();
        for k in self.scheme.phases() {
            groups.insert(k, Vec::new());
        }
        // Phase of each component: mems have their own; combinational
        // components inherit the phase of the nearest downstream mem.
        let mut phase_of: Vec<Option<PhaseId>> = vec![None; self.components.len()];
        for c in self.component_ids() {
            if let Some(p) = self.component(c).mem_phase() {
                phase_of[c.index()] = Some(p);
            }
        }
        // Walk combinational components in reverse evaluation order so
        // downstream phases are known first.
        for &c in self.comb_order.iter().rev() {
            let receivers = self.receivers_of(self.component(c).output());
            let p = receivers.iter().filter_map(|&r| phase_of[r.index()]).min();
            phase_of[c.index()] = p;
        }
        for c in self.component_ids() {
            if let Some(p) = phase_of[c.index()] {
                groups.entry(p).or_default().push(c);
            }
        }
        groups
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist `{}` ({} bits, {})",
            self.name, self.width, self.scheme
        )?;
        for c in self.component_ids() {
            writeln!(f, "  {c}: {}", self.component(c))?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Netlist`]. Allocators use this to materialise
/// a datapath; see crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    width: u8,
    scheme: ClockScheme,
    components: Vec<Component>,
    net_names: Vec<String>,
    controller: Controller,
    inputs: Vec<(String, CompId)>,
    outputs: Vec<(String, NetId)>,
    /// Current instance scope: new components get paths below it.
    scope: Vec<String>,
    /// Paths already taken, for deterministic uniquification.
    used_paths: BTreeMap<String, u32>,
}

impl NetlistBuilder {
    /// Starts a netlist for `width`-bit data under `scheme`, with a
    /// controller of `steps` control steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` (propagated from [`Controller::new`]).
    #[must_use]
    pub fn new(name: &str, width: u8, scheme: ClockScheme, steps: u32) -> Self {
        NetlistBuilder {
            name: name.to_owned(),
            width,
            scheme,
            components: Vec::new(),
            net_names: Vec::new(),
            controller: Controller::new(steps),
            inputs: Vec::new(),
            outputs: Vec::new(),
            scope: Vec::new(),
            used_paths: BTreeMap::new(),
        }
    }

    /// Opens an instance scope: components added until the matching
    /// [`NetlistBuilder::pop_scope`] get paths below `segment`. Scopes
    /// nest; `segment` is sanitized like a label.
    pub fn push_scope(&mut self, segment: &str) {
        self.scope.push(Path::sanitize(segment));
    }

    /// Closes the innermost instance scope (no-op at the root).
    pub fn pop_scope(&mut self) {
        self.scope.pop();
    }

    /// Derives the unique path for a new component labelled `label` in
    /// the current scope. Deterministic: replaying the same scopes and
    /// labels in the same order reproduces the same paths.
    fn derive_path(&mut self, label: &str) -> Path {
        let mut text = self.scope.join(".");
        if !text.is_empty() {
            text.push('.');
        }
        text.push_str(&Path::sanitize(label));
        let mut candidate = text.clone();
        loop {
            let n = self.used_paths.entry(candidate.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                return Path::parse(&candidate).expect("derived paths are valid");
            }
            candidate = format!("{text}_{n}");
        }
    }

    fn push(&mut self, kind: ComponentKind, label: String, net_name: String) -> (CompId, NetId) {
        let path = self.derive_path(&label);
        let out = NetId(self.net_names.len() as u32);
        self.net_names.push(net_name);
        let id = CompId(self.components.len() as u32);
        self.components.push(Component {
            kind,
            out,
            path,
            label,
        });
        (id, out)
    }

    /// Adds a primary-input port named `name`; returns the port and the
    /// net it drives.
    pub fn add_input(&mut self, name: &str) -> (CompId, NetId) {
        let (id, out) = self.push(ComponentKind::Input, name.to_owned(), format!("in_{name}"));
        self.inputs.push((name.to_owned(), id));
        (id, out)
    }

    /// Adds a constant driver.
    pub fn add_const(&mut self, value: u64) -> (CompId, NetId) {
        self.push(
            ComponentKind::Const { value },
            format!("#{value}"),
            format!("const_{value}"),
        )
    }

    /// Adds an ALU implementing `fs` with operand nets `a` and `b`.
    pub fn add_alu(&mut self, fs: FunctionSet, a: NetId, b: NetId, label: &str) -> (AluId, NetId) {
        let (id, out) = self.push(
            ComponentKind::Alu { fs, a, b },
            label.to_owned(),
            format!("alu_{label}"),
        );
        (AluId(id), out)
    }

    /// Adds a memory element with its data input initially unconnected;
    /// connect it later with [`NetlistBuilder::set_mem_input`]. This
    /// two-step protocol is what allows feedback through registers.
    pub fn add_mem(&mut self, kind: MemKind, phase: PhaseId, label: &str) -> (MemId, NetId) {
        let (id, out) = self.push(
            ComponentKind::Mem {
                kind,
                phase,
                input: UNCONNECTED,
            },
            label.to_owned(),
            format!("mem_{label}"),
        );
        (MemId(id), out)
    }

    /// Connects the data input of memory `mem` to `net`. Infallible: a
    /// [`MemId`] can only name a memory element.
    pub fn set_mem_input(&mut self, mem: MemId, net: NetId) {
        self.try_set_mem_input(mem.comp(), net)
            .expect("MemId names a memory element");
    }

    /// Connects the data input of component `mem` to `net`, for callers
    /// holding an untyped id (e.g. importers resolving forward
    /// references).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAMemory`] if `mem` is not a memory
    /// element of this netlist.
    pub fn try_set_mem_input(&mut self, mem: CompId, net: NetId) -> Result<(), NetlistError> {
        match self.components.get_mut(mem.index()).map(|c| &mut c.kind) {
            Some(ComponentKind::Mem { input, .. }) => {
                *input = net;
                Ok(())
            }
            _ => Err(NetlistError::NotAMemory(mem)),
        }
    }

    /// Adds a multiplexer over `inputs` (in select order).
    pub fn add_mux(&mut self, inputs: Vec<NetId>, label: &str) -> (MuxId, NetId) {
        let (id, out) = self.push(
            ComponentKind::Mux { inputs },
            label.to_owned(),
            format!("mux_{label}"),
        );
        (MuxId(id), out)
    }

    /// Declares net `net` as the primary output `name`.
    pub fn mark_output(&mut self, name: &str, net: NetId) {
        self.outputs.push((name.to_owned(), net));
    }

    /// Mutable access to the controller being built.
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// The output net of component `c` (valid during building).
    ///
    /// # Panics
    ///
    /// Panics if `c` has not been added.
    #[must_use]
    pub fn output_of(&self, c: CompId) -> NetId {
        self.components[c.index()].out
    }

    /// The derived hierarchical path of component `c` (valid during
    /// building). Importers use this to verify that replaying an exported
    /// netlist reproduces the recorded paths.
    ///
    /// # Panics
    ///
    /// Panics if `c` has not been added.
    #[must_use]
    pub fn path_of(&self, c: CompId) -> &Path {
        &self.components[c.index()].path
    }

    /// The generated name of net `n` (valid during building).
    ///
    /// # Panics
    ///
    /// Panics if `n` has not been created.
    #[must_use]
    pub fn net_name(&self, n: NetId) -> &str {
        &self.net_names[n.index()]
    }

    /// Number of components added so far.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] describing the first violated invariant;
    /// see that type for the full list of checks.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let nn = self.net_names.len();
        let nc = self.components.len();
        // Connectivity checks.
        for (i, comp) in self.components.iter().enumerate() {
            let id = CompId(i as u32);
            if let ComponentKind::Mem { input, .. } = comp.kind {
                if input == UNCONNECTED {
                    return Err(NetlistError::UnconnectedMem(id));
                }
            }
            if let ComponentKind::Mux { inputs } = &comp.kind {
                if inputs.is_empty() {
                    return Err(NetlistError::EmptyMux(id));
                }
            }
            for n in comp.data_inputs() {
                if n.index() >= nn {
                    return Err(NetlistError::DanglingNet(id, n));
                }
            }
            if let Some(p) = comp.mem_phase() {
                if p.get() > self.scheme.num_clocks() {
                    return Err(NetlistError::PhaseOutOfRange(id, p));
                }
            }
        }
        let net_driver: Vec<CompId> = {
            let mut d = vec![CompId(u32::MAX); nn];
            for (i, comp) in self.components.iter().enumerate() {
                d[comp.out.index()] = CompId(i as u32);
            }
            debug_assert!(
                d.iter().all(|c| c.0 != u32::MAX),
                "every net is created with its driver"
            );
            d
        };
        // Controller checks. The maps are typed, but a typed id can still
        // originate from *another* netlist, so kind and range are checked
        // against this netlist's components.
        for (t, w) in self.controller.iter() {
            for (&c, &sel) in &w.mux_sel {
                match self.components.get(c.index()).map(Component::kind) {
                    Some(ComponentKind::Mux { inputs }) => {
                        if sel >= inputs.len() {
                            return Err(NetlistError::BadControl {
                                step: t,
                                comp: c.comp(),
                                reason: format!("select {sel} on a {}-input mux", inputs.len()),
                            });
                        }
                    }
                    _ => {
                        return Err(NetlistError::BadControl {
                            step: t,
                            comp: c.comp(),
                            reason: "mux select on a non-mux".into(),
                        })
                    }
                }
            }
            for (&c, &op) in &w.alu_fn {
                match self.components.get(c.index()).map(Component::kind) {
                    Some(ComponentKind::Alu { fs, .. }) => {
                        if !fs.contains(op) {
                            return Err(NetlistError::BadControl {
                                step: t,
                                comp: c.comp(),
                                reason: format!("function {op} outside {fs}"),
                            });
                        }
                    }
                    _ => {
                        return Err(NetlistError::BadControl {
                            step: t,
                            comp: c.comp(),
                            reason: "ALU function on a non-ALU".into(),
                        })
                    }
                }
            }
            for &c in &w.mem_load {
                if !self
                    .components
                    .get(c.index())
                    .map(Component::is_mem)
                    .unwrap_or(false)
                {
                    return Err(NetlistError::BadControl {
                        step: t,
                        comp: c.comp(),
                        reason: "load enable on a non-memory".into(),
                    });
                }
            }
        }
        // Combinational topological order (Kahn); mem/const/input outputs
        // are sources.
        let mut indeg = vec![0usize; nc];
        for (i, comp) in self.components.iter().enumerate() {
            if !comp.is_combinational() {
                continue;
            }
            indeg[i] = comp
                .data_inputs()
                .iter()
                .filter(|n| {
                    let d = net_driver[n.index()];
                    self.components[d.index()].is_combinational()
                })
                .count();
        }
        let mut queue: Vec<usize> = (0..nc)
            .filter(|&i| self.components[i].is_combinational() && indeg[i] == 0)
            .collect();
        let mut comb_order = Vec::new();
        let mut head = 0;
        // Receivers index for the decrement pass.
        let mut receivers: Vec<Vec<usize>> = vec![Vec::new(); nn];
        for (i, comp) in self.components.iter().enumerate() {
            if comp.is_combinational() {
                for n in comp.data_inputs() {
                    receivers[n.index()].push(i);
                }
            }
        }
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            comb_order.push(CompId(i as u32));
            for &r in &receivers[self.components[i].out.index()] {
                indeg[r] -= 1;
                if indeg[r] == 0 {
                    queue.push(r);
                }
            }
        }
        let comb_total = self
            .components
            .iter()
            .filter(|c| c.is_combinational())
            .count();
        if comb_order.len() != comb_total {
            let stuck = (0..nc)
                .find(|&i| self.components[i].is_combinational() && indeg[i] > 0)
                .expect("cycle member exists");
            return Err(NetlistError::CombinationalCycle(CompId(stuck as u32)));
        }
        // Output checks.
        for (name, n) in &self.outputs {
            if n.index() >= nn {
                return Err(NetlistError::BadOutput(name.clone()));
            }
        }
        // Path index: builder-side uniquification guarantees injectivity.
        let path_index: BTreeMap<Path, CompId> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.path.clone(), CompId(i as u32)))
            .collect();
        debug_assert_eq!(
            path_index.len(),
            self.components.len(),
            "paths are unique by construction"
        );
        Ok(Netlist {
            name: self.name,
            width: self.width,
            scheme: self.scheme,
            components: self.components,
            net_names: self.net_names,
            net_driver,
            controller: self.controller,
            inputs: self.inputs,
            outputs: self.outputs,
            comb_order,
            path_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::Op;

    /// in_a, in_b -> mux2 -> ALU(+,-) -> latch@1 -> output; ALU.b = in_b.
    fn small() -> Netlist {
        let scheme = ClockScheme::new(2).unwrap();
        let mut nb = NetlistBuilder::new("small", 4, scheme, 2);
        let (_, a) = nb.add_input("a");
        let (_, b) = nb.add_input("b");
        let (r, rout) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r0");
        let (m, mout) = nb.add_mux(vec![a, rout], "m0");
        let fs = FunctionSet::from_ops([Op::Add, Op::Sub]);
        let (alu, aout) = nb.add_alu(fs, mout, b, "alu0");
        nb.set_mem_input(r, aout);
        nb.mark_output("y", rout);
        {
            let w = nb.controller_mut().word_mut(1);
            w.mux_sel.insert(m, 0);
            w.alu_fn.insert(alu, Op::Add);
            w.mem_load.insert(r);
        }
        nb.finish().expect("small netlist is valid")
    }

    #[test]
    fn builder_produces_connected_netlist() {
        let n = small();
        assert_eq!(n.num_components(), 5);
        assert_eq!(n.num_nets(), 5);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn drivers_and_receivers() {
        let n = small();
        let mem = n.mems().next().unwrap().comp();
        let mem_out = n.component(mem).output();
        assert_eq!(n.driver_of(mem_out), mem);
        // The mem output feeds the mux (input 1).
        let recv = n.receivers_of(mem_out);
        assert_eq!(recv.len(), 1);
        assert!(n.component(recv[0]).is_mux());
    }

    #[test]
    fn combinational_order_respects_dependences() {
        let n = small();
        let order = n.combinational_order();
        assert_eq!(order.len(), 2); // mux then ALU
        assert!(n.component(order[0]).is_mux());
        assert!(n.component(order[1]).is_alu());
    }

    #[test]
    fn stats_match_structure() {
        let n = small();
        let s = n.stats();
        assert_eq!(s.alus.len(), 1);
        assert_eq!(s.mem_cells, 1);
        assert_eq!(s.mux_inputs, 2);
        assert_eq!(s.muxes, 1);
        assert_eq!(s.alu_summary(), "1(+-)");
    }

    #[test]
    fn unconnected_mem_rejected() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        let (_m, _) = nb.add_mem(MemKind::Dff, PhaseId::new(1), "r");
        let err = nb.finish().unwrap_err();
        assert!(matches!(err, NetlistError::UnconnectedMem(_)));
    }

    #[test]
    fn empty_mux_rejected() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        nb.add_mux(vec![], "m");
        assert!(matches!(
            nb.finish().unwrap_err(),
            NetlistError::EmptyMux(_)
        ));
    }

    #[test]
    fn phase_out_of_range_rejected() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        let (m, _) = nb.add_mem(MemKind::Latch, PhaseId::new(2), "r");
        nb.set_mem_input(m, a);
        assert!(matches!(
            nb.finish().unwrap_err(),
            NetlistError::PhaseOutOfRange(..)
        ));
    }

    #[test]
    fn bad_mux_select_rejected() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        let (m, _) = nb.add_mux(vec![a], "m");
        nb.controller_mut().word_mut(1).mux_sel.insert(m, 1);
        assert!(matches!(
            nb.finish().unwrap_err(),
            NetlistError::BadControl { .. }
        ));
    }

    #[test]
    fn alu_function_outside_set_rejected() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        let (alu, _) = nb.add_alu(FunctionSet::single(Op::Add), a, a, "alu");
        nb.controller_mut().word_mut(1).alu_fn.insert(alu, Op::Mul);
        assert!(matches!(
            nb.finish().unwrap_err(),
            NetlistError::BadControl { .. }
        ));
    }

    #[test]
    fn load_on_non_mem_rejected() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        let (inp, _) = nb.add_input("a");
        nb.controller_mut().word_mut(1).mem_load.insert(MemId(inp));
        assert!(matches!(
            nb.finish().unwrap_err(),
            NetlistError::BadControl { .. }
        ));
    }

    #[test]
    fn try_set_mem_input_rejects_non_memories() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        let (inp, a) = nb.add_input("a");
        let err = nb.try_set_mem_input(inp, a).unwrap_err();
        assert_eq!(err, NetlistError::NotAMemory(inp));
        assert!(err.to_string().contains("not a memory element"));
    }

    #[test]
    fn paths_follow_scopes_and_are_unique() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("p", 4, scheme, 1);
        nb.push_scope("io");
        let (a_id, a) = nb.add_input("a");
        nb.pop_scope();
        nb.push_scope("regs");
        let (r1, _) = nb.add_mem(MemKind::Dff, PhaseId::new(1), "x/y");
        let (r2, _) = nb.add_mem(MemKind::Dff, PhaseId::new(1), "x/y");
        nb.pop_scope();
        nb.set_mem_input(r1, a);
        nb.set_mem_input(r2, a);
        nb.mark_output("y", nb.output_of(r1.comp()));
        {
            let w = nb.controller_mut().word_mut(1);
            w.mem_load.insert(r1);
            w.mem_load.insert(r2);
        }
        let n = nb.finish().unwrap();
        assert_eq!(n.component(a_id).path().to_string(), "io.a");
        assert_eq!(n.component(r1.comp()).path().to_string(), "regs.x_y");
        assert_eq!(n.component(r2.comp()).path().to_string(), "regs.x_y_2");
        let p = Path::parse("regs.x_y_2").unwrap();
        assert_eq!(n.find(&p), Some(r2.comp()));
        assert_eq!(n.find(&Path::parse("regs.missing").unwrap()), None);
    }

    #[test]
    fn typed_lookups_check_kinds() {
        let n = small();
        let mem = n.mems().next().unwrap();
        assert_eq!(n.as_mem(mem.comp()), Some(mem));
        assert_eq!(n.as_alu(mem.comp()), None);
        assert_eq!(n.as_mux(mem.comp()), None);
        assert!(n.get(CompId(999)).is_none());
        assert!(n.as_mem(CompId(999)).is_none());
    }

    #[test]
    fn combinational_cycle_rejected() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("bad", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        // mux1 reads mux2's output and vice versa: a combinational loop.
        // Nets: in_a = w0, m1 out = w1, m2 out = w2.
        let (_m1, o1) = nb.add_mux(vec![a, NetId(2)], "m1"); // forward ref to m2's output
        let (_m2, _o2) = nb.add_mux(vec![o1], "m2");
        let err = nb.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
    }

    #[test]
    fn dpm_groups_split_by_phase() {
        let scheme = ClockScheme::new(2).unwrap();
        let mut nb = NetlistBuilder::new("dpm", 4, scheme, 2);
        let (_, a) = nb.add_input("a");
        let (r1, _) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r1");
        let (r2, _) = nb.add_mem(MemKind::Latch, PhaseId::new(2), "r2");
        let (_alu, aout) = nb.add_alu(FunctionSet::single(Op::Add), a, a, "alu");
        nb.set_mem_input(r1, aout);
        nb.set_mem_input(r2, a);
        let n = nb.finish().unwrap();
        let groups = n.dpm_groups();
        // ALU feeds r1 (phase 1), so it lands in phase 1's DPM.
        assert_eq!(groups[&PhaseId::new(1)].len(), 2);
        assert_eq!(groups[&PhaseId::new(2)].len(), 1);
    }

    #[test]
    fn display_lists_components() {
        let n = small();
        let s = n.to_string();
        assert!(s.contains("netlist `small`"));
        assert!(s.contains("ALU(+-)"));
        assert!(s.contains("LATCH@CLK1"));
    }
}
