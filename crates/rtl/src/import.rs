//! Structural importers: the inverse of [`export::to_vhdl`] plus a
//! minimal external netlist format (`.mcnl`), feeding the retrofit flow
//! in `mc-core`.
//!
//! [`from_vhdl`] parses exactly what [`export::to_vhdl`] emits — paths
//! and labels ride in the trailing comments — and replays the component
//! stream through the [`NetlistBuilder`] in the original order, so
//! re-exporting an imported netlist reproduces the input byte for byte
//! (the golden round-trip tests enforce this). [`from_mcnl`] accepts a
//! small line-oriented format for designs produced outside this
//! workspace.
//!
//! Both importers are total: any input, however mangled, yields either a
//! netlist or an [`ImportError`] — never a panic (the fuzz tests drive
//! thousands of mutated inputs through them).
//!
//! [`export::to_vhdl`]: crate::export::to_vhdl

use std::collections::BTreeMap;
use std::fmt;

use mc_clocks::{ClockScheme, PhaseId};
use mc_dfg::{FunctionSet, Op, ALL_OPS};
use mc_tech::MemKind;

use crate::component::{AluId, CompId, MemId, MuxId, NetId};
use crate::netlist::{Netlist, NetlistBuilder, NetlistError};
use crate::path::Path;

/// Errors detected while importing a structural netlist. Line numbers are
/// 1-based; line 0 marks file-level problems (e.g. a missing section).
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// A line does not match the grammar.
    Syntax {
        /// 1-based source line (0 = whole file).
        line: usize,
        /// What was expected.
        message: String,
    },
    /// A reference names a signal or cell that does not exist.
    UnknownName {
        /// 1-based source line.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// A name is defined twice.
    Duplicate {
        /// 1-based source line.
        line: usize,
        /// The re-defined name.
        name: String,
    },
    /// A field holds an out-of-range or unparsable value.
    BadValue {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file's recorded identifiers do not replay: a component id,
    /// path or net name disagrees with what the builder derives.
    SignalMismatch {
        /// 1-based source line.
        line: usize,
        /// The identifier recorded in the file.
        expected: String,
        /// The identifier the builder derived.
        found: String,
    },
    /// The parsed netlist failed structural validation.
    Netlist(NetlistError),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ImportError::UnknownName { line, name } => {
                write!(f, "line {line}: unknown name `{name}`")
            }
            ImportError::Duplicate { line, name } => {
                write!(f, "line {line}: duplicate name `{name}`")
            }
            ImportError::BadValue { line, message } => write!(f, "line {line}: {message}"),
            ImportError::SignalMismatch {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: recorded `{expected}` does not replay (derived `{found}`)"
            ),
            ImportError::Netlist(e) => write!(f, "imported netlist invalid: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<NetlistError> for ImportError {
    fn from(e: NetlistError) -> Self {
        ImportError::Netlist(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ImportError {
    ImportError::Syntax {
        line,
        message: message.into(),
    }
}

fn bad(line: usize, message: impl Into<String>) -> ImportError {
    ImportError::BadValue {
        line,
        message: message.into(),
    }
}

fn op_from_symbol(ch: char) -> Option<Op> {
    ALL_OPS.into_iter().find(|op| op.symbol() == ch)
}

fn parse_fs(line: usize, text: &str) -> Result<FunctionSet, ImportError> {
    let inner = text
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| bad(line, format!("function set `{text}` is not parenthesised")))?;
    let mut ops = Vec::new();
    for ch in inner.chars() {
        ops.push(op_from_symbol(ch).ok_or_else(|| bad(line, format!("unknown operation `{ch}`")))?);
    }
    Ok(FunctionSet::from_ops(ops))
}

fn parse_phase(line: usize, text: &str) -> Result<PhaseId, ImportError> {
    let k: u32 = text
        .strip_prefix("CLK")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(line, format!("bad clock name `{text}`")))?;
    if k == 0 {
        return Err(bad(line, "clock phases are 1-based"));
    }
    Ok(PhaseId::new(k))
}

/// Sets the builder scope to the parent of `path`.
fn rescope(nb: &mut NetlistBuilder, current: &mut Vec<String>, path: &Path) {
    let segments: Vec<&str> = path.segments().collect();
    let parent = &segments[..segments.len() - 1];
    while current.len() > parent.len() || !current.iter().zip(parent.iter()).all(|(a, b)| a == b) {
        nb.pop_scope();
        current.pop();
    }
    for seg in &parent[current.len()..] {
        nb.push_scope(seg);
        current.push((*seg).to_owned());
    }
}

/// Splits `name => value` port-map arguments.
fn port_args(s: &str) -> Option<Vec<(&str, &str)>> {
    let mut out = Vec::new();
    for part in s.split(", ") {
        out.push(part.split_once(" => ")?);
    }
    Some(out)
}

/// The bracketed list following `key[` in `s`, e.g. `bracket(s, "load")`.
fn bracket<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let start = s.find(&format!("{key}["))? + key.len() + 1;
    let end = s[start..].find(']')? + start;
    Some(&s[start..end])
}

/// Shared per-import state for the VHDL reader.
struct VhdlReader {
    nb: NetlistBuilder,
    scope: Vec<String>,
    /// Net name → id, as assigned by the builder while replaying.
    nets: BTreeMap<String, NetId>,
    mem_ids: BTreeMap<usize, MemId>,
    alu_ids: BTreeMap<usize, AluId>,
    mux_ids: BTreeMap<usize, MuxId>,
    /// Deferred memory data inputs: `(mem, net name, line)`.
    pending_mem: Vec<(MemId, String, usize)>,
    /// Components replayed so far (the next `cN` must have `N == count`).
    count: usize,
}

impl VhdlReader {
    fn resolve(&self, line: usize, name: &str) -> Result<NetId, ImportError> {
        self.nets
            .get(name)
            .copied()
            .ok_or_else(|| ImportError::UnknownName {
                line,
                name: name.to_owned(),
            })
    }

    /// Records the freshly built component's output net under `name`,
    /// verifying it matches the name the builder generated.
    fn bind_net(&mut self, line: usize, name: &str, net: NetId) -> Result<(), ImportError> {
        let derived = self.nb.net_name(net);
        if derived != name {
            return Err(ImportError::SignalMismatch {
                line,
                expected: name.to_owned(),
                found: derived.to_owned(),
            });
        }
        if self.nets.insert(name.to_owned(), net).is_some() {
            return Err(ImportError::Duplicate {
                line,
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    /// Verifies the replayed component landed on the recorded path.
    fn check_path(&self, line: usize, c: CompId, path: &Path) -> Result<(), ImportError> {
        let derived = self.nb.path_of(c);
        if derived != path {
            return Err(ImportError::SignalMismatch {
                line,
                expected: path.to_string(),
                found: derived.to_string(),
            });
        }
        Ok(())
    }
}

/// Parses the text produced by [`export::to_vhdl`] back into a
/// [`Netlist`].
///
/// The importer replays the component stream in file order through the
/// builder and cross-checks every identifier the file records (component
/// ids, paths, net names) against what the replay derives, so a
/// successful import is guaranteed to re-export byte-identically.
///
/// # Errors
///
/// Returns an [`ImportError`] describing the first problem found; the
/// importer never panics, whatever the input.
///
/// [`export::to_vhdl`]: crate::export::to_vhdl
pub fn from_vhdl(text: &str) -> Result<Netlist, ImportError> {
    let lines: Vec<&str> = text.lines().collect();

    // --- Pre-scan: entity name, clock count, width, controller steps. ---
    let mut name: Option<String> = None;
    for (i, l) in lines.iter().enumerate() {
        let t = l.trim();
        if let Some(rest) = t.strip_prefix("entity ") {
            match rest.strip_suffix(" is") {
                Some(n) if !n.trim().is_empty() => {
                    name = Some(n.trim().to_owned());
                    break;
                }
                _ => return Err(syntax(i + 1, "malformed entity line")),
            }
        }
    }
    let name = name.ok_or_else(|| syntax(0, "no `entity` declaration"))?;

    let clocks = lines
        .iter()
        .filter(|l| {
            let t = l.trim();
            t.starts_with("CLK") && t.ends_with(" : in bit;")
        })
        .count() as u32;
    let scheme = ClockScheme::new(clocks).map_err(|e| bad(0, format!("bad clock scheme: {e}")))?;

    let mut width: Option<u8> = None;
    for (i, l) in lines.iter().enumerate() {
        if let Some(pos) = l.find("bit_vector(") {
            let rest = &l[pos + "bit_vector(".len()..];
            let hi: u32 = rest
                .split_once(" downto")
                .and_then(|(h, _)| h.parse().ok())
                .ok_or_else(|| bad(i + 1, "malformed bit_vector range"))?;
            if hi >= 64 {
                return Err(bad(i + 1, format!("unsupported width {}", hi + 1)));
            }
            width = Some(hi as u8 + 1);
            break;
        }
    }
    let width = width.ok_or_else(|| syntax(0, "no bit_vector port or signal"))?;

    let mut steps: Option<u32> = None;
    for (i, l) in lines.iter().enumerate() {
        if let Some(rest) = l.trim().strip_prefix("-- controller: ") {
            let n: u32 = rest
                .split_once(' ')
                .and_then(|(n, _)| n.parse().ok())
                .ok_or_else(|| bad(i + 1, "malformed controller summary"))?;
            if n == 0 {
                return Err(bad(i + 1, "controller needs at least one step"));
            }
            steps = Some(n);
            break;
        }
    }
    let steps = steps.ok_or_else(|| syntax(0, "no `-- controller:` summary"))?;

    let mut r = VhdlReader {
        nb: NetlistBuilder::new(&name, width, scheme, steps),
        scope: Vec::new(),
        nets: BTreeMap::new(),
        mem_ids: BTreeMap::new(),
        alu_ids: BTreeMap::new(),
        mux_ids: BTreeMap::new(),
        pending_mem: Vec::new(),
        count: 0,
    };

    // --- Architecture body + trailing controller words. ---
    let mut in_body = false;
    let mut body_done = false;
    for (i, l) in lines.iter().enumerate() {
        let ln = i + 1;
        let t = l.trim_end();
        let tt = t.trim();
        if !in_body && !body_done {
            if tt == "begin" {
                in_body = true;
            }
            continue;
        }
        if in_body {
            if tt == "end structural;" {
                in_body = false;
                body_done = true;
                continue;
            }
            if tt.is_empty() {
                continue;
            }
            parse_body_line(&mut r, ln, tt, steps)?;
            continue;
        }
        // After the body: controller words.
        if let Some(rest) = tt.strip_prefix("-- ").map(str::trim_start) {
            if let Some(word) = rest.strip_prefix('T') {
                parse_controller_line(&mut r, ln, word, steps)?;
            }
        }
    }
    if !body_done {
        return Err(syntax(0, "no `begin` .. `end structural;` body"));
    }

    for (mem, dname, ln) in std::mem::take(&mut r.pending_mem) {
        let net = r.resolve(ln, &dname)?;
        r.nb.try_set_mem_input(mem.comp(), net)
            .expect("importer only defers memory ids");
    }
    Ok(r.nb.finish()?)
}

/// One architecture-body line: a component instantiation, a constant or
/// input assignment, or an output assignment.
fn parse_body_line(
    r: &mut VhdlReader,
    ln: usize,
    tt: &str,
    _steps: u32,
) -> Result<(), ImportError> {
    let (code, comment) = match tt.rsplit_once(" -- ") {
        Some((c, tail)) => (c.trim_end(), Some(tail)),
        None => (tt, None),
    };

    if let Some((cname, rest)) = code.split_once(" : ") {
        // Component instantiation. The recorded id must replay.
        let expected = format!("c{}", r.count);
        if cname != expected {
            return Err(ImportError::SignalMismatch {
                line: ln,
                expected: cname.to_owned(),
                found: expected,
            });
        }
        let comment = comment.ok_or_else(|| syntax(ln, "component line lacks a path comment"))?;
        let (ptext, rest_c) = comment
            .split_once(' ')
            .ok_or_else(|| syntax(ln, "component comment lacks a label"))?;
        let label = rest_c
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| syntax(ln, "component label is not bracketed"))?;
        let path = Path::parse(ptext).map_err(|e| bad(ln, format!("bad path: {e}")))?;

        let body = rest
            .strip_suffix(");")
            .ok_or_else(|| syntax(ln, "instantiation does not end with `);`"))?;
        let pm = body
            .find("port map (")
            .ok_or_else(|| syntax(ln, "instantiation lacks a port map"))?;
        let args = port_args(&body[pm + "port map (".len()..])
            .ok_or_else(|| syntax(ln, "malformed port map"))?;
        let arg = |key: &str| -> Result<&str, ImportError> {
            args.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| syntax(ln, format!("port map lacks `{key}`")))
        };

        rescope(&mut r.nb, &mut r.scope, &path);
        if let Some(gm) = body.strip_prefix("alu generic map (fns => \"") {
            let fstext = gm
                .split_once('"')
                .map(|(fs, _)| fs)
                .ok_or_else(|| syntax(ln, "unterminated function set"))?;
            let fs = parse_fs(ln, fstext)?;
            let a = r.resolve(ln, arg("a")?)?;
            let b = r.resolve(ln, arg("b")?)?;
            let (alu, net) = r.nb.add_alu(fs, a, b, label);
            r.check_path(ln, alu.comp(), &path)?;
            r.bind_net(ln, arg("y")?, net)?;
            r.alu_ids.insert(r.count, alu);
        } else if body.starts_with("latch_bank ") || body.starts_with("dff_bank ") {
            let kind = if body.starts_with("latch_bank ") {
                MemKind::Latch
            } else {
                MemKind::Dff
            };
            let phase = parse_phase(ln, arg("clk")?)?;
            let (mem, net) = r.nb.add_mem(kind, phase, label);
            r.check_path(ln, mem.comp(), &path)?;
            r.bind_net(ln, arg("q")?, net)?;
            r.pending_mem.push((mem, arg("d")?.to_owned(), ln));
            r.mem_ids.insert(r.count, mem);
        } else if body.starts_with("mux") {
            let mut inputs = Vec::new();
            for (k, v) in &args {
                if let Some(j) = k.strip_prefix('i') {
                    if j.parse::<usize>().ok() != Some(inputs.len()) {
                        return Err(syntax(ln, "mux inputs are not consecutive"));
                    }
                    inputs.push(r.resolve(ln, v)?);
                }
            }
            let (m, net) = r.nb.add_mux(inputs, label);
            r.check_path(ln, m.comp(), &path)?;
            r.bind_net(ln, arg("y")?, net)?;
            r.mux_ids.insert(r.count, m);
        } else {
            return Err(syntax(ln, "unknown component kind"));
        }
        r.count += 1;
        return Ok(());
    }

    if let Some((lhs, rhs)) = code.split_once(" <= ") {
        let rhs = rhs
            .strip_suffix(';')
            .ok_or_else(|| syntax(ln, "assignment does not end with `;`"))?;
        match comment {
            Some(ptext) => {
                // Constant or primary-input assignment.
                let path = Path::parse(ptext).map_err(|e| bad(ln, format!("bad path: {e}")))?;
                rescope(&mut r.nb, &mut r.scope, &path);
                let (id, net) =
                    if let Some(bits) = rhs.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                        if bits.is_empty() || !bits.chars().all(|c| c == '0' || c == '1') {
                            return Err(bad(ln, format!("bad constant `{rhs}`")));
                        }
                        let value = u64::from_str_radix(bits, 2)
                            .map_err(|e| bad(ln, format!("bad constant `{rhs}`: {e}")))?;
                        r.nb.add_const(value)
                    } else {
                        r.nb.add_input(rhs)
                    };
                r.check_path(ln, id, &path)?;
                r.bind_net(ln, lhs, net)?;
                r.count += 1;
            }
            None => {
                // Primary-output assignment.
                let net = r.resolve(ln, rhs)?;
                r.nb.mark_output(lhs, net);
            }
        }
        return Ok(());
    }

    Err(syntax(ln, "unrecognised architecture-body line"))
}

/// One `T{t}: load[..] fn[..] sel[..]` controller comment.
fn parse_controller_line(
    r: &mut VhdlReader,
    ln: usize,
    word: &str,
    steps: u32,
) -> Result<(), ImportError> {
    let (tstr, rest) = word
        .split_once(':')
        .ok_or_else(|| syntax(ln, "malformed controller word"))?;
    let t: u32 = tstr
        .parse()
        .map_err(|e| bad(ln, format!("bad step number `{tstr}`: {e}")))?;
    if t == 0 || t > steps {
        return Err(bad(ln, format!("step {t} outside 1..={steps}")));
    }
    let comp_index = |tok: &str| -> Result<usize, ImportError> {
        tok.strip_prefix('c')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(ln, format!("bad component reference `{tok}`")))
    };
    let loads = bracket(rest, "load").ok_or_else(|| syntax(ln, "missing load list"))?;
    let fns = bracket(rest, "fn").ok_or_else(|| syntax(ln, "missing fn list"))?;
    let sels = bracket(rest, "sel").ok_or_else(|| syntax(ln, "missing sel list"))?;
    for tok in loads.split(',').filter(|s| !s.is_empty()) {
        let idx = comp_index(tok)?;
        let mem = r
            .mem_ids
            .get(&idx)
            .ok_or_else(|| bad(ln, format!("load target {tok} is not a memory")))?;
        r.nb.controller_mut().word_mut(t).mem_load.insert(*mem);
    }
    for tok in fns.split(',').filter(|s| !s.is_empty()) {
        let (c, sym) = tok
            .split_once(':')
            .ok_or_else(|| syntax(ln, format!("malformed fn entry `{tok}`")))?;
        let idx = comp_index(c)?;
        let alu = *r
            .alu_ids
            .get(&idx)
            .ok_or_else(|| bad(ln, format!("fn target {c} is not an ALU")))?;
        let mut chars = sym.chars();
        let op = match (chars.next().and_then(op_from_symbol), chars.next()) {
            (Some(op), None) => op,
            _ => return Err(bad(ln, format!("unknown operation `{sym}`"))),
        };
        r.nb.controller_mut().word_mut(t).alu_fn.insert(alu, op);
    }
    for tok in sels.split(',').filter(|s| !s.is_empty()) {
        let (c, sel) = tok
            .split_once('=')
            .ok_or_else(|| syntax(ln, format!("malformed sel entry `{tok}`")))?;
        let idx = comp_index(c)?;
        let m = *r
            .mux_ids
            .get(&idx)
            .ok_or_else(|| bad(ln, format!("sel target {c} is not a mux")))?;
        let s: usize = sel
            .parse()
            .map_err(|e| bad(ln, format!("bad select `{sel}`: {e}")))?;
        r.nb.controller_mut().word_mut(t).mux_sel.insert(m, s);
    }
    Ok(())
}

/// One cell reference in the `.mcnl` reader.
#[derive(Clone, Copy)]
enum McnlRef {
    Mem(MemId),
    Alu(AluId),
    Mux(MuxId),
    Plain,
}

/// Parses the minimal external `.mcnl` structural format.
///
/// The format is line-oriented; `#` starts a comment and blank lines are
/// skipped. The first significant line is
/// `design NAME WIDTH CLOCKS STEPS`, followed by cells (referenced by
/// name; memory data inputs may be forward references), outputs and
/// control words:
///
/// ```text
/// design acc 8 2 2
/// input x
/// const one 1
/// latch r 1 sum      # name phase input
/// dff   s 2 r
/// alu  sum (+-) x r  # name (ops) a b
/// mux  m x r         # name inputs...
/// output y r
/// ctrl 1 load=r fn=sum:+ sel=m:0
/// ```
///
/// # Errors
///
/// Returns an [`ImportError`] describing the first problem found; the
/// importer never panics, whatever the input.
pub fn from_mcnl(text: &str) -> Result<Netlist, ImportError> {
    let mut significant = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (dln, design) = significant.next().ok_or_else(|| syntax(0, "empty input"))?;
    let d: Vec<&str> = design.split_whitespace().collect();
    let (name, width, clocks, steps) = match d.as_slice() {
        ["design", name, w, c, s] => {
            let w: u32 = w
                .parse()
                .map_err(|e| bad(dln, format!("bad width `{w}`: {e}")))?;
            if !(1..=64).contains(&w) {
                return Err(bad(dln, format!("unsupported width {w}")));
            }
            let c: u32 = c
                .parse()
                .map_err(|e| bad(dln, format!("bad clock count `{c}`: {e}")))?;
            let s: u32 = s
                .parse()
                .map_err(|e| bad(dln, format!("bad step count `{s}`: {e}")))?;
            if s == 0 {
                return Err(bad(dln, "a design needs at least one control step"));
            }
            (*name, w as u8, c, s)
        }
        _ => return Err(syntax(dln, "expected `design NAME WIDTH CLOCKS STEPS`")),
    };
    let scheme =
        ClockScheme::new(clocks).map_err(|e| bad(dln, format!("bad clock scheme: {e}")))?;
    let mut nb = NetlistBuilder::new(name, width, scheme, steps);

    let mut nets: BTreeMap<String, NetId> = BTreeMap::new();
    let mut refs: BTreeMap<String, McnlRef> = BTreeMap::new();
    let mut pending_mem: Vec<(MemId, String, usize)> = Vec::new();
    let mut pending_out: Vec<(String, String, usize)> = Vec::new();
    let mut ctrl_lines: Vec<(usize, Vec<String>)> = Vec::new();

    let define = |refs: &mut BTreeMap<String, McnlRef>,
                  ln: usize,
                  name: &str,
                  r: McnlRef|
     -> Result<(), ImportError> {
        if refs.insert(name.to_owned(), r).is_some() {
            return Err(ImportError::Duplicate {
                line: ln,
                name: name.to_owned(),
            });
        }
        Ok(())
    };
    let resolve = |nets: &BTreeMap<String, NetId>, ln: usize, n: &str| {
        nets.get(n)
            .copied()
            .ok_or_else(|| ImportError::UnknownName {
                line: ln,
                name: n.to_owned(),
            })
    };

    for (ln, line) in significant {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["input", n] => {
                define(&mut refs, ln, n, McnlRef::Plain)?;
                let (_, net) = nb.add_input(n);
                nets.insert((*n).to_owned(), net);
            }
            ["const", n, v] => {
                define(&mut refs, ln, n, McnlRef::Plain)?;
                let value: u64 = v
                    .parse()
                    .map_err(|e| bad(ln, format!("bad constant `{v}`: {e}")))?;
                let (_, net) = nb.add_const(value);
                nets.insert((*n).to_owned(), net);
            }
            [kind @ ("latch" | "dff"), n, p, d] => {
                define(&mut refs, ln, n, McnlRef::Plain)?;
                let k: u32 = p
                    .parse()
                    .map_err(|e| bad(ln, format!("bad phase `{p}`: {e}")))?;
                if k == 0 {
                    return Err(bad(ln, "clock phases are 1-based"));
                }
                let mk = if *kind == "latch" {
                    MemKind::Latch
                } else {
                    MemKind::Dff
                };
                let (mem, net) = nb.add_mem(mk, PhaseId::new(k), n);
                refs.insert((*n).to_owned(), McnlRef::Mem(mem));
                nets.insert((*n).to_owned(), net);
                pending_mem.push((mem, (*d).to_owned(), ln));
            }
            ["alu", n, fs, a, b] => {
                define(&mut refs, ln, n, McnlRef::Plain)?;
                let fs = parse_fs(ln, fs)?;
                let a = resolve(&nets, ln, a)?;
                let b = resolve(&nets, ln, b)?;
                let (alu, net) = nb.add_alu(fs, a, b, n);
                refs.insert((*n).to_owned(), McnlRef::Alu(alu));
                nets.insert((*n).to_owned(), net);
            }
            ["mux", n, ins @ ..] if !ins.is_empty() => {
                define(&mut refs, ln, n, McnlRef::Plain)?;
                let inputs = ins
                    .iter()
                    .map(|i| resolve(&nets, ln, i))
                    .collect::<Result<Vec<_>, _>>()?;
                let (m, net) = nb.add_mux(inputs, n);
                refs.insert((*n).to_owned(), McnlRef::Mux(m));
                nets.insert((*n).to_owned(), net);
            }
            ["output", port, n] => {
                pending_out.push(((*port).to_owned(), (*n).to_owned(), ln));
            }
            ["ctrl", t, rest @ ..] => {
                let mut toks = vec![(*t).to_owned()];
                toks.extend(rest.iter().map(|s| (*s).to_owned()));
                ctrl_lines.push((ln, toks));
            }
            _ => return Err(syntax(ln, format!("unrecognised line `{line}`"))),
        }
    }

    for (mem, d, ln) in pending_mem {
        let net = resolve(&nets, ln, &d)?;
        nb.try_set_mem_input(mem.comp(), net)
            .expect("mcnl reader only defers memory ids");
    }
    for (port, n, ln) in pending_out {
        let net = resolve(&nets, ln, &n)?;
        nb.mark_output(&port, net);
    }
    for (ln, toks) in ctrl_lines {
        let t: u32 = toks[0]
            .parse()
            .map_err(|e| bad(ln, format!("bad step number `{}`: {e}", toks[0])))?;
        if t == 0 || t > steps {
            return Err(bad(ln, format!("step {t} outside 1..={steps}")));
        }
        for tok in &toks[1..] {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| syntax(ln, format!("malformed control token `{tok}`")))?;
            match key {
                "load" => match refs.get(val) {
                    Some(McnlRef::Mem(m)) => {
                        nb.controller_mut().word_mut(t).mem_load.insert(*m);
                    }
                    Some(_) => return Err(bad(ln, format!("`{val}` is not a memory"))),
                    None => {
                        return Err(ImportError::UnknownName {
                            line: ln,
                            name: val.to_owned(),
                        })
                    }
                },
                "fn" => {
                    let (n, sym) = val
                        .split_once(':')
                        .ok_or_else(|| syntax(ln, format!("malformed fn token `{tok}`")))?;
                    let alu = match refs.get(n) {
                        Some(McnlRef::Alu(a)) => *a,
                        Some(_) => return Err(bad(ln, format!("`{n}` is not an ALU"))),
                        None => {
                            return Err(ImportError::UnknownName {
                                line: ln,
                                name: n.to_owned(),
                            })
                        }
                    };
                    let mut chars = sym.chars();
                    let op = match (chars.next().and_then(op_from_symbol), chars.next()) {
                        (Some(op), None) => op,
                        _ => return Err(bad(ln, format!("unknown operation `{sym}`"))),
                    };
                    nb.controller_mut().word_mut(t).alu_fn.insert(alu, op);
                }
                "sel" => {
                    let (n, sel) = val
                        .split_once(':')
                        .ok_or_else(|| syntax(ln, format!("malformed sel token `{tok}`")))?;
                    let m = match refs.get(n) {
                        Some(McnlRef::Mux(m)) => *m,
                        Some(_) => return Err(bad(ln, format!("`{n}` is not a mux"))),
                        None => {
                            return Err(ImportError::UnknownName {
                                line: ln,
                                name: n.to_owned(),
                            })
                        }
                    };
                    let s: usize = sel
                        .parse()
                        .map_err(|e| bad(ln, format!("bad select `{sel}`: {e}")))?;
                    nb.controller_mut().word_mut(t).mux_sel.insert(m, s);
                }
                _ => return Err(syntax(ln, format!("unknown control key `{key}`"))),
            }
        }
    }
    Ok(nb.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_vhdl;
    use crate::netlist::NetlistBuilder;
    use mc_dfg::Op;

    fn sample() -> Netlist {
        let scheme = ClockScheme::new(2).unwrap();
        let mut nb = NetlistBuilder::new("sample", 8, scheme, 2);
        nb.push_scope("io");
        let (_, a) = nb.add_input("a");
        let (_, b) = nb.add_input("b");
        nb.pop_scope();
        let (_, k) = nb.add_const(5);
        nb.push_scope("regs");
        let (r1, r1out) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "x/u");
        let (r2, r2out) = nb.add_mem(MemKind::Dff, PhaseId::new(2), "x_u");
        nb.pop_scope();
        let (m, mout) = nb.add_mux(vec![a, k, r2out], "m0");
        let (alu, aout) = nb.add_alu(FunctionSet::from_ops([Op::Add, Op::Mul]), mout, b, "alu0");
        nb.set_mem_input(r1, aout);
        nb.set_mem_input(r2, r1out);
        nb.mark_output("y", r2out);
        {
            let w = nb.controller_mut().word_mut(1);
            w.mux_sel.insert(m, 0);
            w.alu_fn.insert(alu, Op::Add);
            w.mem_load.insert(r1);
        }
        nb.controller_mut().word_mut(2).mem_load.insert(r2);
        nb.finish().unwrap()
    }

    #[test]
    fn vhdl_round_trip_is_byte_identical() {
        let nl = sample();
        let text = to_vhdl(&nl);
        let back = from_vhdl(&text).unwrap();
        assert_eq!(to_vhdl(&back), text);
        assert_eq!(back.stats(), nl.stats());
        assert_eq!(back.controller(), nl.controller());
        // Paths survive the trip: the two registers sanitize to the same
        // leaf and keep their uniquified paths and original labels.
        let p = Path::parse("regs.x_u").unwrap();
        assert_eq!(
            back.component(back.find(&p).unwrap()).label(),
            "x/u",
            "labels survive too"
        );
        let p2 = Path::parse("regs.x_u_2").unwrap();
        assert_eq!(back.component(back.find(&p2).unwrap()).label(), "x_u");
    }

    #[test]
    fn mcnl_parses_a_small_design() {
        let text = "\
# accumulator
design acc 8 1 1
input x
latch r 1 sum
alu sum (+) x r
output y r
ctrl 1 load=r fn=sum:+
";
        let nl = from_mcnl(text).unwrap();
        assert_eq!(nl.name(), "acc");
        assert_eq!(nl.width(), 8);
        assert_eq!(nl.stats().mem_cells, 1);
        assert!(nl
            .controller()
            .word(1)
            .loads(nl.mems().next().unwrap().comp()));
    }

    #[test]
    fn vhdl_error_variants_have_deterministic_lines() {
        // UnknownName: output references a missing net.
        let text = to_vhdl(&sample());
        let broken = text.replace("y <= mem_x_u;", "y <= mem_ghost;");
        assert!(matches!(
            from_vhdl(&broken).unwrap_err(),
            ImportError::UnknownName { .. }
        ));
        // Syntax: garbage in the body.
        let broken = text.replace("  y <= mem_x_u;", "  what is this");
        assert!(matches!(
            from_vhdl(&broken).unwrap_err(),
            ImportError::Syntax { .. }
        ));
        // BadValue: constant with non-binary digits.
        let broken = text.replace("<= \"00000101\";", "<= \"0000z101\";");
        assert!(matches!(
            from_vhdl(&broken).unwrap_err(),
            ImportError::BadValue { .. }
        ));
        // SignalMismatch: the recorded leaf disagrees with the replayed
        // derivation (`regs.zzz` recorded, `regs.x_u` derived from the
        // label).
        let broken = text.replace("-- regs.x_u [x/u]", "-- regs.zzz [x/u]");
        assert_ne!(broken, text, "mutation must hit the exported comment");
        assert!(matches!(
            from_vhdl(&broken).unwrap_err(),
            ImportError::SignalMismatch { .. }
        ));
    }

    #[test]
    fn mcnl_error_variants() {
        assert!(matches!(
            from_mcnl("").unwrap_err(),
            ImportError::Syntax { line: 0, .. }
        ));
        assert!(matches!(
            from_mcnl("design d 8 1 1\ninput a\ninput a\n").unwrap_err(),
            ImportError::Duplicate { line: 3, .. }
        ));
        assert!(matches!(
            from_mcnl("design d 8 1 1\nalu f (+) a a\n").unwrap_err(),
            ImportError::UnknownName { line: 2, .. }
        ));
        assert!(matches!(
            from_mcnl("design d 99 1 1\n").unwrap_err(),
            ImportError::BadValue { line: 1, .. }
        ));
        // Netlist: structurally invalid (mem never connected is impossible
        // here, but an out-of-range phase is).
        let err = from_mcnl("design d 8 1 1\ninput a\nlatch r 7 a\nctrl 1 load=r\n").unwrap_err();
        assert!(matches!(err, ImportError::Netlist(_)), "{err}");
        assert!(err.to_string().contains("invalid"));
    }
}
