//! Static verification of the latch discipline (§2.2/§4.2): a transparent
//! latch may be written only in steps where no simultaneous capture reads
//! it — "only variables with completely disjoint life spans (non
//! overlapping READs and WRITEs) may be merged".
//!
//! The check is structural and exhaustive: for every control step, every
//! capturing memory element's *combinational input cone* is traced back
//! to the memory outputs it depends on; if a latch in that cone captures
//! in the same step, the reader races the writer's transparency window.
//! Edge-triggered DFFs are immune (master–slave isolation), which is
//! exactly why conventional single-clock datapaths must pay for them.

use std::collections::BTreeSet;
use std::fmt;

use mc_tech::MemKind;

use crate::component::{CompId, ComponentKind, NetId};
use crate::netlist::Netlist;

/// One read/write overlap hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatchHazard {
    /// The control step in which the race occurs.
    pub step: u32,
    /// The latch that is written while being read.
    pub written_latch: CompId,
    /// The memory element whose capture reads the latch combinationally.
    pub reader: CompId,
}

impl fmt::Display for LatchHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: latch {} is written while {} captures a value read through it",
            self.step, self.written_latch, self.reader
        )
    }
}

/// The combinational source memories of a net in a specific control step:
/// every memory element whose output reaches `net` through ALUs and the
/// *selected* mux paths of that step. Muxes whose select is unspecified in
/// the step's control word are traversed conservatively through all
/// inputs (their effective select depends on history under latched
/// control lines).
fn source_mems(
    netlist: &Netlist,
    net: NetId,
    word: &crate::control::ControlWord,
) -> BTreeSet<CompId> {
    let mut out = BTreeSet::new();
    let mut stack = vec![net];
    let mut seen = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        let driver = netlist.driver_of(n);
        let comp = netlist.component(driver);
        match comp.kind() {
            ComponentKind::Mem { .. } => {
                out.insert(driver);
            }
            ComponentKind::Alu { .. } => stack.extend(comp.data_inputs()),
            ComponentKind::Mux { inputs } => match word.sel_of(driver) {
                Some(sel) if sel < inputs.len() => stack.push(inputs[sel]),
                _ => stack.extend(inputs.iter().copied()),
            },
            ComponentKind::Const { .. } | ComponentKind::Input => {}
        }
    }
    out
}

/// Checks the latch discipline over the whole controller schedule.
///
/// Returns every `(step, written latch, capturing reader)` triple where a
/// latch's transparency window overlaps a read that is captured in the
/// same step. Datapaths produced by the multi-clock allocators must
/// return an empty list; a conventional schedule executed on latches
/// typically does not — which is the paper's argument for why latches
/// need the multi-clock (or at least read/write-disjoint) allocation.
///
/// Memory elements are checked *as if* they were latches when
/// `treat_all_as_latches` is set, so a DFF-based design can be audited
/// for latch-convertibility; otherwise only actual latches are flagged.
#[must_use]
pub fn check_latch_discipline(netlist: &Netlist, treat_all_as_latches: bool) -> Vec<LatchHazard> {
    let mut hazards = Vec::new();
    let is_latchy = |mem: CompId| -> bool {
        match netlist.component(mem).kind() {
            ComponentKind::Mem { kind, .. } => treat_all_as_latches || *kind == MemKind::Latch,
            _ => false,
        }
    };
    for (t, word) in netlist.controller().iter() {
        // Memories that actually capture this step: load asserted *and*
        // their phase owns the step.
        let capturing: Vec<CompId> = netlist
            .mems()
            .filter(|&m| {
                word.mem_load.contains(&m)
                    && netlist
                        .component(m.comp())
                        .mem_phase()
                        .is_some_and(|p| netlist.scheme().is_active(p, t))
            })
            .map(crate::component::MemId::comp)
            .collect();
        for &reader in &capturing {
            let input = match netlist.component(reader).kind() {
                ComponentKind::Mem { input, .. } => *input,
                _ => unreachable!("mems() yields memories"),
            };
            for src in source_mems(netlist, input, word) {
                if src != reader && capturing.contains(&src) && is_latchy(src) {
                    hazards.push(LatchHazard {
                        step: t,
                        written_latch: src,
                        reader,
                    });
                }
            }
        }
    }
    hazards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use mc_clocks::{ClockScheme, PhaseId};
    use mc_dfg::{FunctionSet, Op};

    /// r2 captures r1+1 in the same step r1 captures — a latch race.
    fn racy(kind: MemKind) -> Netlist {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("racy", 4, scheme, 1);
        let (_, a) = nb.add_input("a");
        let (r1, r1out) = nb.add_mem(kind, PhaseId::new(1), "r1");
        let (r2, r2out) = nb.add_mem(kind, PhaseId::new(1), "r2");
        let (alu, sum) = nb.add_alu(FunctionSet::single(Op::Add), r1out, a, "alu");
        nb.set_mem_input(r1, a);
        nb.set_mem_input(r2, sum);
        nb.mark_output("y", r2out);
        let w = nb.controller_mut().word_mut(1);
        w.alu_fn.insert(alu, Op::Add);
        w.mem_load.insert(r1);
        w.mem_load.insert(r2);
        nb.finish().unwrap()
    }

    #[test]
    fn latch_race_is_detected() {
        let hazards = check_latch_discipline(&racy(MemKind::Latch), false);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].step, 1);
        assert!(hazards[0].to_string().contains("written while"));
    }

    #[test]
    fn dffs_are_immune_unless_audited() {
        let nl = racy(MemKind::Dff);
        assert!(check_latch_discipline(&nl, false).is_empty());
        // Auditing the same schedule for latch convertibility finds the
        // overlap.
        assert_eq!(check_latch_discipline(&nl, true).len(), 1);
    }

    #[test]
    fn disjoint_steps_are_clean() {
        let scheme = ClockScheme::single();
        let mut nb = NetlistBuilder::new("clean", 4, scheme, 2);
        let (_, a) = nb.add_input("a");
        let (r1, r1out) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r1");
        let (r2, r2out) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r2");
        let (alu, sum) = nb.add_alu(FunctionSet::single(Op::Add), r1out, a, "alu");
        nb.set_mem_input(r1, a);
        nb.set_mem_input(r2, sum);
        nb.mark_output("y", r2out);
        nb.controller_mut().word_mut(1).mem_load.insert(r1);
        {
            let w = nb.controller_mut().word_mut(2);
            w.alu_fn.insert(alu, Op::Add);
            w.mem_load.insert(r2);
        }
        let nl = nb.finish().unwrap();
        assert!(check_latch_discipline(&nl, true).is_empty());
    }

    #[test]
    fn phase_separation_also_avoids_the_race() {
        // Same-step loads in *different* phases never actually capture
        // together: only the owning phase's memories see the edge.
        let scheme = ClockScheme::new(2).unwrap();
        let mut nb = NetlistBuilder::new("phases", 4, scheme, 2);
        let (_, a) = nb.add_input("a");
        let (r1, r1out) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "r1");
        let (r2, r2out) = nb.add_mem(MemKind::Latch, PhaseId::new(2), "r2");
        let (alu, sum) = nb.add_alu(FunctionSet::single(Op::Add), r1out, a, "alu");
        nb.set_mem_input(r1, a);
        nb.set_mem_input(r2, sum);
        nb.mark_output("y", r2out);
        nb.controller_mut().word_mut(1).mem_load.insert(r1);
        {
            let w = nb.controller_mut().word_mut(2);
            w.alu_fn.insert(alu, Op::Add);
            w.mem_load.insert(r2);
        }
        let nl = nb.finish().unwrap();
        assert!(check_latch_discipline(&nl, true).is_empty());
    }
}
