//! Hierarchical component paths: stable, human-readable identifiers that
//! survive re-export and re-import, unlike dense [`CompId`]s which are an
//! artefact of creation order.
//!
//! A [`Path`] is a dot-separated sequence of segments (`regs.x_u_y1`,
//! `fu0.alu0_a`). Each segment names one level of the instance tree: the
//! allocator emits two levels (a scope per structural section, a leaf per
//! component), imported designs keep whatever hierarchy their source had.
//! Paths order lexicographically by segment, so `BTreeMap<Path, _>`
//! iteration is deterministic and independent of insertion order — the
//! property the hierarchical [`Circuit`](crate::Circuit) flattening
//! relies on.
//!
//! [`CompId`]: crate::CompId

use std::fmt;
use std::str::FromStr;

/// A hierarchical, dot-separated component path.
///
/// Invariants: at least one segment; every segment is non-empty, starts
/// with an ASCII letter or `_`, and continues with ASCII alphanumerics or
/// `_`. Arbitrary labels are mapped into this alphabet with
/// [`Path::sanitize`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path(String);

/// Why a string failed to parse as a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    /// The offending text.
    pub text: String,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path `{}`", self.text)
    }
}

impl std::error::Error for PathError {}

/// Whether `s` is a valid path segment.
fn valid_segment(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Path {
    /// Parses a dot-separated path, validating every segment.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] if the text is empty or any segment violates
    /// the segment alphabet.
    pub fn parse(text: &str) -> Result<Self, PathError> {
        if !text.is_empty() && text.split('.').all(valid_segment) {
            Ok(Path(text.to_owned()))
        } else {
            Err(PathError {
                text: text.to_owned(),
            })
        }
    }

    /// A single-segment path from an already-sanitized segment.
    ///
    /// # Panics
    ///
    /// Panics if `segment` is not a valid segment; use [`Path::sanitize`]
    /// for arbitrary labels.
    #[must_use]
    pub fn segment(segment: &str) -> Self {
        assert!(valid_segment(segment), "invalid path segment `{segment}`");
        Path(segment.to_owned())
    }

    /// Maps an arbitrary label into a valid segment: every character
    /// outside `[A-Za-z0-9_]` becomes `_`, and a leading digit (or empty
    /// label) gains a `v` prefix. Deterministic, so replaying the same
    /// labels yields the same segments.
    #[must_use]
    pub fn sanitize(label: &str) -> String {
        let mut s: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if s.is_empty() || s.starts_with(|c: char| c.is_ascii_digit()) {
            s.insert(0, 'v');
        }
        s
    }

    /// The child path `self.segment`.
    ///
    /// # Panics
    ///
    /// Panics if `segment` is not a valid segment.
    #[must_use]
    pub fn child(&self, segment: &str) -> Self {
        assert!(valid_segment(segment), "invalid path segment `{segment}`");
        Path(format!("{}.{segment}", self.0))
    }

    /// The parent path, or `None` for a single-segment path.
    #[must_use]
    pub fn parent(&self) -> Option<Self> {
        self.0.rfind('.').map(|i| Path(self.0[..i].to_owned()))
    }

    /// The final segment.
    #[must_use]
    pub fn leaf(&self) -> &str {
        self.0.rsplit('.').next().expect("paths are non-empty")
    }

    /// The segments in root-to-leaf order.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Whether `self` equals `prefix` or sits below it in the tree.
    #[must_use]
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.0 == prefix.0
            || (self.0.len() > prefix.0.len()
                && self.0.starts_with(&prefix.0)
                && self.0.as_bytes()[prefix.0.len()] == b'.')
    }

    /// The path as its canonical dotted string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for Path {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_dotted_segments() {
        let p = Path::parse("regs.x_u_y1").unwrap();
        assert_eq!(p.segments().collect::<Vec<_>>(), vec!["regs", "x_u_y1"]);
        assert_eq!(p.leaf(), "x_u_y1");
        assert_eq!(p.parent(), Some(Path::parse("regs").unwrap()));
        assert_eq!(Path::parse("regs").unwrap().parent(), None);
    }

    #[test]
    fn parse_rejects_bad_text() {
        for bad in ["", ".", "a..b", "1abc", "a.", "a b", "a.-"] {
            assert!(Path::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn sanitize_produces_valid_segments() {
        for label in ["x/u/y1", "#5", "", "9lives", "alu0", "a b.c"] {
            let seg = Path::sanitize(label);
            assert!(
                Path::parse(&seg).is_ok(),
                "sanitize({label:?}) = {seg:?} must parse"
            );
        }
        assert_eq!(Path::sanitize("x/u/y1"), "x_u_y1");
        assert_eq!(Path::sanitize("#5"), "_5");
        assert_eq!(Path::sanitize("9lives"), "v9lives");
    }

    #[test]
    fn starts_with_respects_segment_boundaries() {
        let root = Path::parse("fu0").unwrap();
        assert!(Path::parse("fu0.alu0").unwrap().starts_with(&root));
        assert!(root.starts_with(&root));
        assert!(!Path::parse("fu01.alu0").unwrap().starts_with(&root));
        assert!(!root.starts_with(&Path::parse("fu0.alu0").unwrap()));
    }

    #[test]
    fn child_and_display_round_trip() {
        let p = Path::segment("io").child("a");
        assert_eq!(p.to_string(), "io.a");
        assert_eq!(Path::parse(&p.to_string()).unwrap(), p);
        assert_eq!("io.a".parse::<Path>().unwrap(), p);
    }

    #[test]
    fn ordering_is_lexicographic_by_text() {
        let mut v = [
            Path::parse("regs.b").unwrap(),
            Path::parse("io.a").unwrap(),
            Path::parse("regs.a").unwrap(),
        ];
        v.sort();
        let s: Vec<String> = v.iter().map(Path::to_string).collect();
        assert_eq!(s, vec!["io.a", "regs.a", "regs.b"]);
    }
}
