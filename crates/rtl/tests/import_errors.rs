//! Totality of the netlist importers: no input, however mangled, may make
//! `from_vhdl` or `from_mcnl` panic, and every [`ImportError`] variant is
//! reachable through the public API with a usable line-located message.
//!
//! Mirrors the behavioural-DSL fuzz harness in
//! `crates/dfg/tests/parse_errors.rs`: deterministic PRNG garbage in three
//! flavours — raw bytes, printable ASCII soup, and valid exports with a
//! handful of single-byte mutations.

use mc_clocks::{ClockScheme, PhaseId};
use mc_dfg::{FunctionSet, Op};
use mc_prng::Xoshiro256;
use mc_rtl::export::{to_mcnl, to_vhdl};
use mc_rtl::import::{from_mcnl, from_vhdl, ImportError};
use mc_rtl::{Netlist, NetlistBuilder};
use mc_tech::MemKind;

/// A small but representative netlist: both memory kinds, a mux, an ALU,
/// a constant, scoped paths and a two-step controller.
fn sample() -> Netlist {
    let scheme = ClockScheme::new(2).unwrap();
    let mut nb = NetlistBuilder::new("fuzz_sample", 8, scheme, 2);
    nb.push_scope("io");
    let (_, a) = nb.add_input("a");
    let (_, b) = nb.add_input("b");
    nb.pop_scope();
    let (_, k) = nb.add_const(5);
    nb.push_scope("regs");
    let (r1, r1out) = nb.add_mem(MemKind::Latch, PhaseId::new(1), "acc");
    let (r2, r2out) = nb.add_mem(MemKind::Dff, PhaseId::new(2), "out");
    nb.pop_scope();
    let (m, mout) = nb.add_mux(vec![a, k, r2out], "m0");
    let (alu, aout) = nb.add_alu(FunctionSet::from_ops([Op::Add, Op::Mul]), mout, b, "alu0");
    nb.set_mem_input(r1, aout);
    nb.set_mem_input(r2, r1out);
    nb.mark_output("y", r2out);
    {
        let w = nb.controller_mut().word_mut(1);
        w.mux_sel.insert(m, 0);
        w.alu_fn.insert(alu, Op::Add);
        w.mem_load.insert(r1);
    }
    nb.controller_mut().word_mut(2).mem_load.insert(r2);
    nb.finish().unwrap()
}

/// Feed both importers deterministic garbage and require `Err` (or a
/// valid netlist), never a panic. The importers are the only path
/// user-authored structural text enters the system through.
#[test]
fn fuzz_smoke_never_panics() {
    let nl = sample();
    let corpora = [to_vhdl(&nl), to_mcnl(&nl)];
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_F00D);
    for round in 0..2000u64 {
        let source = match round % 3 {
            // Arbitrary bytes (lossily decoded — the importers take &str).
            0 => {
                let len = rng.below(400) as usize;
                let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                String::from_utf8_lossy(&bytes).into_owned()
            }
            // Printable ASCII soup with newlines.
            1 => {
                let len = rng.below(400) as usize;
                (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.1) {
                            '\n'
                        } else {
                            (0x20 + rng.below(0x5f) as u8) as char
                        }
                    })
                    .collect()
            }
            // A valid export with random single-byte mutations.
            _ => {
                let base = &corpora[(round % 2) as usize];
                let mut bytes = base.as_bytes().to_vec();
                for _ in 0..=rng.below(6) {
                    let i = rng.below(bytes.len() as u64) as usize;
                    bytes[i] = rng.below(128) as u8;
                }
                String::from_utf8_lossy(&bytes).into_owned()
            }
        };
        // Ok is fine (a mutation can stay valid); panicking is not.
        let _ = from_vhdl(&source);
        let _ = from_mcnl(&source);
    }
}

/// Every `ImportError` variant is reachable through the public importers,
/// so no failure path is dead code or a hidden panic.
#[test]
fn every_error_variant_is_reachable() {
    let vhdl = to_vhdl(&sample());

    let syntax = from_mcnl("design d 8 1 1\nwhat is this\n").unwrap_err();
    assert!(
        matches!(syntax, ImportError::Syntax { line: 2, .. }),
        "{syntax}"
    );

    let unknown = from_mcnl("design d 8 1 1\nalu f (+) ghost ghost\n").unwrap_err();
    assert!(
        matches!(unknown, ImportError::UnknownName { line: 2, ref name } if name == "ghost"),
        "{unknown}"
    );

    let duplicate = from_mcnl("design d 8 1 1\ninput a\ninput a\n").unwrap_err();
    assert!(
        matches!(duplicate, ImportError::Duplicate { line: 3, ref name } if name == "a"),
        "{duplicate}"
    );

    let bad = from_mcnl("design d 8 1 1\ninput a\nlatch r 0 a\n").unwrap_err();
    assert!(
        matches!(bad, ImportError::BadValue { line: 3, .. }),
        "{bad}"
    );

    // Structural validation: phase 7 under a single clock.
    let netlist = from_mcnl("design d 8 1 1\ninput a\nlatch r 7 a\nctrl 1 load=r\n").unwrap_err();
    assert!(matches!(netlist, ImportError::Netlist(_)), "{netlist}");

    // Recorded identifiers must replay: tamper a path comment in the
    // VHDL so the recorded leaf disagrees with the derived one.
    let tampered = vhdl.replace("-- regs.acc [acc]", "-- regs.zzz [acc]");
    assert_ne!(tampered, vhdl, "mutation must hit an exported comment");
    let mismatch = from_vhdl(&tampered).unwrap_err();
    assert!(
        matches!(mismatch, ImportError::SignalMismatch { .. }),
        "{mismatch}"
    );
}

/// Error messages locate the offending line for every variant — they are
/// what `mcpm retrofit --file` prints verbatim.
#[test]
fn errors_render_line_located_messages() {
    let cases = [
        "design d 8 1 1\nwhat is this\n",
        "design d 8 1 1\nalu f (+) ghost ghost\n",
        "design d 8 1 1\ninput a\ninput a\n",
        "design d 8 1 1\ninput a\nlatch r 0 a\n",
    ];
    for text in cases {
        let msg = from_mcnl(text).unwrap_err().to_string();
        assert!(msg.contains("line "), "no location in `{msg}`");
    }
}
