//! The power and area models: pricing simulated switching activity with
//! the technology library's capacitances (`P = f·C_L·V²`, the paper's
//! §5.1 procedure) and summing cell areas in λ².

use std::fmt;

use mc_rtl::{ComponentKind, Netlist, NetlistStats, PowerMode};
use mc_sim::Activity;
use mc_tech::{MemKind, TechLibrary};

/// Power estimate of one design under one activity profile, in mW at the
/// library's clock frequency, split by mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Total power (mW).
    pub total_mw: f64,
    /// Clock distribution into memory elements and the controller.
    pub clock_mw: f64,
    /// Stored-bit switching in memory elements.
    pub storage_mw: f64,
    /// ALU internal switching (input-activity driven).
    pub alu_mw: f64,
    /// Mux internal switching.
    pub mux_mw: f64,
    /// Net (wire + receiver input) switching.
    pub wire_mw: f64,
    /// Control-line switching.
    pub control_mw: f64,
    /// Static (leakage) power, proportional to layout area. Tiny at
    /// 0.8 µm; reported so the area/power trade-off is complete.
    pub static_mw: f64,
}

impl PowerReport {
    /// Power reduction of `self` relative to `baseline`, as a fraction in
    /// `0..=1` (negative if `self` consumes more).
    #[must_use]
    pub fn reduction_vs(&self, baseline: &PowerReport) -> f64 {
        if baseline.total_mw == 0.0 {
            0.0
        } else {
            1.0 - self.total_mw / baseline.total_mw
        }
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} mW (clk {:.2}, store {:.2}, alu {:.2}, mux {:.2}, wire {:.2}, ctrl {:.2}, \
             leak {:.3})",
            self.total_mw,
            self.clock_mw,
            self.storage_mw,
            self.alu_mw,
            self.mux_mw,
            self.wire_mw,
            self.control_mw,
            self.static_mw
        )
    }
}

/// Area estimate of one design in λ² (after layout overhead), split by
/// component class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Total layout area (λ²).
    pub total_lambda2: f64,
    /// ALU cell area (λ², pre-overhead).
    pub alu_lambda2: f64,
    /// Memory-element cell area (λ², pre-overhead).
    pub mem_lambda2: f64,
    /// Mux cell area (λ², pre-overhead).
    pub mux_lambda2: f64,
    /// Controller area (λ², pre-overhead).
    pub ctrl_lambda2: f64,
    /// Power-management overhead: clock-gating cells and operand-isolation
    /// latches (λ², pre-overhead).
    pub pm_lambda2: f64,
}

impl AreaReport {
    /// Area increase of `self` relative to `baseline`, as a fraction
    /// (negative when `self` is smaller).
    #[must_use]
    pub fn increase_vs(&self, baseline: &AreaReport) -> f64 {
        if baseline.total_lambda2 == 0.0 {
            0.0
        } else {
            self.total_lambda2 / baseline.total_lambda2 - 1.0
        }
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} λ² (alu {:.0}, mem {:.0}, mux {:.0}, ctrl {:.0}, pm {:.0})",
            self.total_lambda2,
            self.alu_lambda2,
            self.mem_lambda2,
            self.mux_lambda2,
            self.ctrl_lambda2,
            self.pm_lambda2
        )
    }
}

/// Prices a simulation's switching activity into average power (mW).
///
/// Every counter in [`Activity`] maps to one capacitance query: net bit
/// flips load wire plus receiver input capacitance, ALU input activity
/// scales the ALU's internal capacitance, memory elements pay per clock
/// pulse and per stored-bit flip, and control lines pay per toggle.
#[must_use]
pub fn estimate_power(netlist: &Netlist, activity: &Activity, lib: &TechLibrary) -> PowerReport {
    let width = netlist.width();
    let w = f64::from(width);
    let steps = activity.steps.max(1) as f64;

    let mut clock_pj = 0.0;
    let mut storage_pj = 0.0;
    let mut alu_pj = 0.0;
    let mut mux_pj = 0.0;
    let mut wire_pj = 0.0;

    // Receiver input capacitance per bit of each net.
    let mut receiver_cap = vec![0.0f64; netlist.num_nets()];
    for c in netlist.component_ids() {
        let comp = netlist.component(c);
        let per_bit = match comp.kind() {
            ComponentKind::Alu { .. } => lib.alu_port_cap_per_bit(),
            ComponentKind::Mux { .. } => lib.mux_input_cap_per_bit(),
            ComponentKind::Mem { .. } => lib.mem_input_cap_per_bit(),
            ComponentKind::Const { .. } | ComponentKind::Input => 0.0,
        };
        for n in comp.data_inputs() {
            receiver_cap[n.index()] += per_bit;
        }
    }
    for n in netlist.net_ids() {
        let fanout = netlist.receivers_of(n).len();
        let cap_bit = lib.wire_cap_per_bit(fanout) + receiver_cap[n.index()];
        wire_pj += activity.net_toggles[n.index()] as f64 * lib.toggle_energy(cap_bit);
    }

    for c in netlist.component_ids() {
        let comp = netlist.component(c);
        match comp.kind() {
            ComponentKind::Alu { fs, .. } => {
                // When all 2·w input bits toggle, the full internal
                // capacitance switches once.
                let frac = activity.input_toggles[c.index()] as f64 / (2.0 * w);
                alu_pj += frac * lib.full_swing_energy(lib.alu_internal_cap(*fs, width));
            }
            ComponentKind::Mux { inputs } => {
                mux_pj += activity.net_toggles[comp.output().index()] as f64
                    * lib.toggle_energy(lib.mux_internal_cap_per_bit(inputs.len()));
            }
            ComponentKind::Mem { kind, .. } => {
                clock_pj += activity.clock_pulses[c.index()] as f64
                    * lib.full_swing_energy(lib.mem_clock_cap(*kind, width));
                storage_pj += activity.store_toggles[c.index()] as f64
                    * lib.toggle_energy(lib.mem_store_cap_per_bit(*kind));
            }
            ComponentKind::Const { .. } | ComponentKind::Input => {}
        }
    }

    let control_pj = activity.control_toggles as f64
        * lib.toggle_energy(lib.controller_cap_per_toggle())
        + activity.controller_pulses as f64 * lib.full_swing_energy(lib.controller_clock_cap());

    let to_mw = |pj: f64| lib.power_mw(pj / steps);
    let clock_mw = to_mw(clock_pj);
    let storage_mw = to_mw(storage_pj);
    let alu_mw = to_mw(alu_pj);
    let mux_mw = to_mw(mux_pj);
    let wire_mw = to_mw(wire_pj);
    let control_mw = to_mw(control_pj);
    // Leakage over the base layout area (power-management overhead cells
    // are excluded here; their leakage is second-order of second-order).
    let base_area = estimate_area(netlist, PowerMode::non_gated(), lib).total_lambda2;
    let static_mw = lib.static_power_mw(base_area);
    PowerReport {
        total_mw: clock_mw + storage_mw + alu_mw + mux_mw + wire_mw + control_mw + static_mw,
        clock_mw,
        storage_mw,
        alu_mw,
        mux_mw,
        wire_mw,
        control_mw,
        static_mw,
    }
}

/// Estimates layout area of the design, including the power-management
/// overhead implied by `mode` (clock-gating cells per memory element,
/// operand-isolation latches per ALU input bit).
#[must_use]
pub fn estimate_area(netlist: &Netlist, mode: PowerMode, lib: &TechLibrary) -> AreaReport {
    let width = netlist.width();
    let mut alu = 0.0;
    let mut mem = 0.0;
    let mut mux = 0.0;
    let mut pm = 0.0;
    let mut alu_count = 0usize;
    let mut mem_count = 0usize;
    for c in netlist.component_ids() {
        match netlist.component(c).kind() {
            ComponentKind::Alu { fs, .. } => {
                alu += lib.alu_area(*fs, width);
                alu_count += 1;
            }
            ComponentKind::Mem { kind, .. } => {
                mem += lib.mem_area(*kind, width);
                mem_count += 1;
            }
            ComponentKind::Mux { inputs } => mux += lib.mux_area(inputs.len(), width),
            ComponentKind::Const { .. } | ComponentKind::Input => {}
        }
    }
    if mode.gated_mem_clocks {
        // One gating cell (latch + AND) per memory element.
        pm += mem_count as f64 * lib.mem_area(MemKind::Latch, 1) * 1.5;
    }
    if mode.operand_isolation {
        // One isolation latch bank per ALU operand port.
        pm += alu_count as f64 * 2.0 * lib.mem_area(MemKind::Latch, width) * 0.6;
    }
    let ctrl = lib.controller_area(
        netlist.controller().len(),
        netlist.controller().control_points(),
    );
    let total = lib.layout_area(alu + mem + mux + ctrl + pm);
    AreaReport {
        total_lambda2: total,
        alu_lambda2: alu,
        mem_lambda2: mem,
        mux_lambda2: mux,
        ctrl_lambda2: ctrl,
        pm_lambda2: pm,
    }
}

/// The cost of generating the `n` non-overlapping phase clocks on-chip:
/// `(area λ², power mW)` of a ring-counter phase generator switching every
/// system-clock period.
///
/// The paper's flow — like [`estimate_power`]/[`estimate_area`] — treats
/// the clocks as chip inputs and does not charge this; call this function
/// to quantify the overhead explicitly (for a 4-bit datapath it is a
/// visible fraction; for realistic widths it amortises away).
#[must_use]
pub fn clock_generator_overhead(netlist: &Netlist, lib: &TechLibrary) -> (f64, f64) {
    let n = netlist.scheme().num_clocks();
    let area = lib.layout_area(lib.clock_generator_area(n));
    let power = lib.power_mw(lib.full_swing_energy(lib.clock_generator_cap_per_step(n)));
    (area, power)
}

/// Power attributed to one component (its internal switching plus the net
/// it drives).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPower {
    /// The component.
    pub comp: mc_rtl::CompId,
    /// Its report label.
    pub label: String,
    /// Attributed power (mW).
    pub mw: f64,
}

/// Ranks components by attributed power, highest first: each component is
/// charged its internal switching (ALU activity, mux tree, memory clock
/// and storage) plus the loading of the net it drives. Useful to find the
/// hot spots of a design.
#[must_use]
pub fn per_component_power(
    netlist: &Netlist,
    activity: &Activity,
    lib: &TechLibrary,
) -> Vec<ComponentPower> {
    let width = netlist.width();
    let w = f64::from(width);
    let steps = activity.steps.max(1) as f64;
    let mut out = Vec::new();
    for c in netlist.component_ids() {
        let comp = netlist.component(c);
        let mut pj = 0.0;
        match comp.kind() {
            ComponentKind::Alu { fs, .. } => {
                let frac = activity.input_toggles[c.index()] as f64 / (2.0 * w);
                pj += frac * lib.full_swing_energy(lib.alu_internal_cap(*fs, width));
            }
            ComponentKind::Mux { inputs } => {
                pj += activity.net_toggles[comp.output().index()] as f64
                    * lib.toggle_energy(lib.mux_internal_cap_per_bit(inputs.len()));
            }
            ComponentKind::Mem { kind, .. } => {
                pj += activity.clock_pulses[c.index()] as f64
                    * lib.full_swing_energy(lib.mem_clock_cap(*kind, width));
                pj += activity.store_toggles[c.index()] as f64
                    * lib.toggle_energy(lib.mem_store_cap_per_bit(*kind));
            }
            ComponentKind::Const { .. } | ComponentKind::Input => {}
        }
        // Charge the driven net's wire load to the driver.
        let net = comp.output();
        let fanout = netlist.receivers_of(net).len();
        pj += activity.net_toggles[net.index()] as f64
            * lib.toggle_energy(lib.wire_cap_per_bit(fanout));
        out.push(ComponentPower {
            comp: c,
            label: comp.label().to_owned(),
            mw: lib.power_mw(pj / steps),
        });
    }
    out.sort_by(|a, b| b.mw.partial_cmp(&a.mw).expect("power is finite"));
    out
}

/// Power attributed to each datapath module (Fig. 3b): the per-phase
/// breakdown that shows how consumption distributes across the
/// partitions. Components shared across phases follow
/// [`Netlist::dpm_groups`]'s assignment; controller and receiver-input
/// overheads are not attributed (same convention as
/// [`per_component_power`]).
#[must_use]
pub fn per_dpm_power(
    netlist: &Netlist,
    activity: &Activity,
    lib: &TechLibrary,
) -> Vec<(mc_clocks::PhaseId, f64)> {
    let by_comp = per_component_power(netlist, activity, lib);
    let groups = netlist.dpm_groups();
    groups
        .into_iter()
        .map(|(phase, comps)| {
            let mw = by_comp
                .iter()
                .filter(|cp| comps.contains(&cp.comp))
                .map(|cp| cp.mw)
                .sum();
            (phase, mw)
        })
        .collect()
}

/// Monte-Carlo confidence bounds on a design's total power, from
/// evaluating several independent stimulus seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCi {
    /// Mean total power over the seeds (mW); equals
    /// [`PowerReport::total_mw`] of the containing report.
    pub mean_mw: f64,
    /// Sample standard deviation of the per-seed totals (mW).
    pub std_mw: f64,
    /// Half-width of the 95 % confidence interval (mW): the true mean
    /// lies in `mean_mw ± ci95_mw` with 95 % confidence under the normal
    /// approximation.
    pub ci95_mw: f64,
    /// Number of seeds evaluated.
    pub seeds: usize,
}

impl fmt::Display for PowerCi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} mW (95 % CI, {} seeds)",
            self.mean_mw, self.ci95_mw, self.seeds
        )
    }
}

/// A complete design evaluation: the paper's table row for one design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name (from the netlist).
    pub name: String,
    /// Average power.
    pub power: PowerReport,
    /// Layout area.
    pub area: AreaReport,
    /// Resource statistics (ALUs, memory cells, mux inputs).
    pub stats: NetlistStats,
    /// Static timing summary (critical path / fmax).
    pub timing: crate::timing::TimingReport,
    /// Monte-Carlo confidence bounds when the report averaged several
    /// stimulus seeds ([`evaluate_design_monte_carlo`]); `None` for
    /// single-seed evaluations, whose numbers are unchanged point
    /// samples.
    pub power_ci: Option<PowerCi>,
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2} mW, {:.0} λ², ALUs {}, mem {}, muxin {}",
            self.name,
            self.power.total_mw,
            self.area.total_lambda2,
            self.stats.alu_summary(),
            self.stats.mem_cells,
            self.stats.mux_inputs
        )
    }
}

/// Simulates `netlist` under `mode` with random vectors and produces the
/// full report (power, area, resource stats).
#[must_use]
pub fn evaluate_design(
    netlist: &Netlist,
    mode: PowerMode,
    lib: &TechLibrary,
    computations: usize,
    seed: u64,
) -> DesignReport {
    let cfg = mc_sim::SimConfig::new(mode, computations, seed);
    let result = mc_sim::simulate(netlist, &cfg);
    evaluate_design_with_activity(netlist, mode, lib, &result.activity)
}

/// Prices an already-simulated design: builds the full report from a
/// precomputed switching-activity profile instead of re-simulating.
///
/// [`evaluate_design`] is this plus the simulation; flows that keep the
/// simulation trace as an explicit artifact (see `mc-core`'s pass
/// pipeline) call this directly.
#[must_use]
pub fn evaluate_design_with_activity(
    netlist: &Netlist,
    mode: PowerMode,
    lib: &TechLibrary,
    activity: &mc_sim::Activity,
) -> DesignReport {
    DesignReport {
        name: netlist.name().to_owned(),
        power: estimate_power(netlist, activity, lib),
        area: estimate_area(netlist, mode, lib),
        stats: netlist.stats(),
        timing: crate::timing::analyze_timing(netlist, lib),
        power_ci: None,
    }
}

/// Prices one precomputed activity profile per stimulus seed and folds
/// them into a Monte-Carlo report: every power mechanism is averaged
/// over the seeds (pricing is linear in the counters, so this equals
/// pricing the mean activity), and [`DesignReport::power_ci`] carries
/// the mean, sample standard deviation and 95 % CI half-width of the
/// per-seed totals. Area, resource stats and timing are seed-independent
/// and evaluated once.
///
/// With a single activity this degenerates to
/// [`evaluate_design_with_activity`] plus a zero-width interval.
///
/// # Panics
///
/// Panics if `activities` is empty.
#[must_use]
pub fn evaluate_design_monte_carlo(
    netlist: &Netlist,
    mode: PowerMode,
    lib: &TechLibrary,
    activities: &[mc_sim::Activity],
) -> DesignReport {
    assert!(
        !activities.is_empty(),
        "Monte-Carlo evaluation needs at least one seed's activity"
    );
    let reports: Vec<PowerReport> = activities
        .iter()
        .map(|a| estimate_power(netlist, a, lib))
        .collect();
    let n = reports.len() as f64;
    let avg = |f: fn(&PowerReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
    let power = PowerReport {
        total_mw: avg(|r| r.total_mw),
        clock_mw: avg(|r| r.clock_mw),
        storage_mw: avg(|r| r.storage_mw),
        alu_mw: avg(|r| r.alu_mw),
        mux_mw: avg(|r| r.mux_mw),
        wire_mw: avg(|r| r.wire_mw),
        control_mw: avg(|r| r.control_mw),
        static_mw: avg(|r| r.static_mw),
    };
    let totals: Vec<f64> = reports.iter().map(|r| r.total_mw).collect();
    let stats = crate::analysis::monte_carlo_stats(&totals);
    DesignReport {
        name: netlist.name().to_owned(),
        power,
        area: estimate_area(netlist, mode, lib),
        stats: netlist.stats(),
        timing: crate::timing::analyze_timing(netlist, lib),
        power_ci: Some(PowerCi {
            mean_mw: stats.mean,
            std_mw: stats.std_dev,
            ci95_mw: stats.ci95_half_width,
            seeds: stats.samples,
        }),
    }
}

/// Configuration of an adaptive Monte-Carlo power evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Random computations per seed.
    pub computations: usize,
    /// First stimulus seed; seed `k` derives deterministically from it
    /// (see [`derive_seeds`]), so identical configurations yield
    /// bit-identical reports.
    pub base_seed: u64,
    /// Hard ceiling on the number of seeds.
    pub max_seeds: usize,
    /// Lane width of the batched kernel — also the sequential batch
    /// granularity of the early-stopping check.
    pub lanes: usize,
    /// The multi-seed kernel to simulate through. Backends are
    /// bit-identical per seed; only the early-stopping granularity
    /// (one kernel sweep) depends on the choice.
    pub backend: mc_sim::BatchBackend,
    /// Early-stopping threshold: stop once the 95 % CI half-width is at
    /// most this fraction of the mean (checked after each completed
    /// batch; `None` always runs `max_seeds`).
    pub rel_ci: Option<f64>,
}

/// Deterministic seed schedule for Monte-Carlo runs: seed `0` is `base`
/// itself (so lane 0 reproduces the single-seed run exactly) and later
/// seeds stride by the 64-bit golden ratio.
#[must_use]
pub fn derive_seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|k| base.wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect()
}

/// Adaptive Monte-Carlo evaluation: simulates seeds through the selected
/// multi-seed kernel one sweep at a time, prices each lane, and stops
/// early once the 95 % CI half-width of the total power falls under
/// `cfg.rel_ci` of the mean (sequential-batch early stopping). Runs at
/// most `cfg.max_seeds` seeds.
///
/// # Panics
///
/// Panics if `cfg.max_seeds` is zero.
#[must_use]
pub fn evaluate_design_monte_carlo_adaptive(
    netlist: &Netlist,
    mode: PowerMode,
    lib: &TechLibrary,
    cfg: &MonteCarloConfig,
) -> DesignReport {
    assert!(cfg.max_seeds > 0, "max_seeds must be positive");
    let seeds = derive_seeds(cfg.base_seed, cfg.max_seeds);
    let program = mc_sim::SeedKernel::compile(netlist, mode, cfg.backend, cfg.lanes);
    let mut activities: Vec<mc_sim::Activity> = Vec::with_capacity(cfg.max_seeds);
    let mut totals: Vec<f64> = Vec::with_capacity(cfg.max_seeds);
    for chunk in seeds.chunks(program.lanes().max(1)) {
        for activity in program.run_seeds_activity(cfg.computations, chunk, false) {
            totals.push(estimate_power(netlist, &activity, lib).total_mw);
            activities.push(activity);
        }
        if let Some(rel) = cfg.rel_ci {
            let stats = crate::analysis::monte_carlo_stats(&totals);
            if crate::analysis::ci_converged(&stats, rel) {
                break;
            }
        }
    }
    evaluate_design_monte_carlo(netlist, mode, lib, &activities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;

    fn hal(n: u32, strategy: Strategy) -> Netlist {
        let bm = benchmarks::hal();
        let opts = AllocOptions::new(strategy, ClockScheme::new(n).unwrap());
        allocate(&bm.dfg, &bm.schedule, &opts).unwrap().netlist
    }

    #[test]
    fn power_is_positive_and_decomposes() {
        let nl = hal(1, Strategy::Conventional);
        let lib = TechLibrary::vsc450();
        let rep = evaluate_design(&nl, PowerMode::non_gated(), &lib, 100, 7);
        let p = rep.power;
        assert!(p.total_mw > 0.0);
        let sum = p.clock_mw
            + p.storage_mw
            + p.alu_mw
            + p.mux_mw
            + p.wire_mw
            + p.control_mw
            + p.static_mw;
        assert!((p.total_mw - sum).abs() < 1e-9);
        // Leakage is a tiny fraction at 0.8 µm.
        assert!(p.static_mw < 0.02 * p.total_mw, "leakage {}", p.static_mw);
    }

    #[test]
    fn zero_activity_costs_only_leakage() {
        let nl = hal(1, Strategy::Conventional);
        let lib = TechLibrary::vsc450();
        let activity = mc_sim::Activity::new(nl.num_nets(), nl.num_components());
        let p = estimate_power(&nl, &activity, &lib);
        assert_eq!(p.clock_mw, 0.0);
        assert_eq!(p.alu_mw, 0.0);
        assert_eq!(p.wire_mw, 0.0);
        assert!(p.static_mw > 0.0, "area always leaks");
        assert!((p.total_mw - p.static_mw).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_with_one_seed_is_total_and_finite() {
        // Regression: a single-seed Monte-Carlo run must degenerate to the
        // plain evaluation plus a zero-width interval — no NaN std/CI from
        // the n−1 variance denominator, no panic.
        let nl = hal(1, Strategy::Conventional);
        let lib = TechLibrary::vsc450();
        let mode = PowerMode::non_gated();
        let cfg = mc_sim::SimConfig::new(mode, 50, 7);
        let activity = mc_sim::simulate(&nl, &cfg).activity;
        let rep = evaluate_design_monte_carlo(&nl, mode, &lib, std::slice::from_ref(&activity));
        let ci = rep.power_ci.expect("Monte-Carlo reports carry an interval");
        assert_eq!(ci.seeds, 1);
        assert!(ci.mean_mw.is_finite() && ci.mean_mw > 0.0);
        assert_eq!(ci.std_mw, 0.0, "one seed has no spread, not NaN");
        assert_eq!(ci.ci95_mw, 0.0, "one seed has no interval, not NaN");
        let single = evaluate_design_with_activity(&nl, mode, &lib, &activity);
        assert!((rep.power.total_mw - single.power.total_mw).abs() < 1e-12);
    }

    #[test]
    fn gated_mode_beats_non_gated_on_power() {
        let nl = hal(1, Strategy::Conventional);
        let lib = TechLibrary::vsc450();
        let ng = evaluate_design(&nl, PowerMode::non_gated(), &lib, 300, 7);
        let g = evaluate_design(&nl, PowerMode::gated(), &lib, 300, 7);
        assert!(
            g.power.total_mw < ng.power.total_mw,
            "gated {} vs non-gated {}",
            g.power.total_mw,
            ng.power.total_mw
        );
        assert!(g.power.reduction_vs(&ng.power) > 0.0);
    }

    #[test]
    fn gating_adds_area() {
        let nl = hal(1, Strategy::Conventional);
        let lib = TechLibrary::vsc450();
        let ng = estimate_area(&nl, PowerMode::non_gated(), &lib);
        let g = estimate_area(&nl, PowerMode::gated(), &lib);
        assert!(g.total_lambda2 > ng.total_lambda2);
        assert!(g.increase_vs(&ng) > 0.0);
        assert!(g.pm_lambda2 > 0.0);
        assert_eq!(ng.pm_lambda2, 0.0);
    }

    #[test]
    fn area_lands_in_the_papers_magnitude() {
        // The paper's benchmarks run 2.4–5.6 Mλ²; ours should land within
        // the same order of magnitude (0.5–20 Mλ²).
        for n in [1u32, 2, 3] {
            let nl = hal(n, Strategy::Integrated);
            let lib = TechLibrary::vsc450();
            let a = estimate_area(&nl, PowerMode::multiclock(), &lib);
            assert!(
                (5e5..2e7).contains(&a.total_lambda2),
                "n={n}: {} λ²",
                a.total_lambda2
            );
        }
    }

    #[test]
    fn power_lands_in_the_papers_magnitude() {
        // Paper rows run 3.5–18.7 mW; accept 0.5–60 mW.
        let nl = hal(1, Strategy::Conventional);
        let lib = TechLibrary::vsc450();
        let rep = evaluate_design(&nl, PowerMode::non_gated(), &lib, 300, 7);
        assert!(
            (0.5..60.0).contains(&rep.power.total_mw),
            "{} mW",
            rep.power.total_mw
        );
    }

    #[test]
    fn multiclock_reduces_clock_power_share() {
        let lib = TechLibrary::vsc450();
        let one = evaluate_design(
            &hal(1, Strategy::Integrated),
            PowerMode::multiclock(),
            &lib,
            300,
            7,
        );
        let three = evaluate_design(
            &hal(3, Strategy::Integrated),
            PowerMode::multiclock(),
            &lib,
            300,
            7,
        );
        // Phase clocks cut pulses by n even though the 3-clock design has
        // more memory elements and pays for the phase generator (which is
        // included in clock power, so the per-mem ratio lands near 1/n
        // plus that overhead rather than exactly 1/3).
        let one_per_mem = one.power.clock_mw / one.stats.mem_cells as f64;
        let three_per_mem = three.power.clock_mw / three.stats.mem_cells as f64;
        assert!(
            three_per_mem < 0.75 * one_per_mem,
            "per-mem clock power {three_per_mem} vs {one_per_mem}"
        );
    }

    #[test]
    fn clock_generator_overhead_scales_with_n() {
        let lib = TechLibrary::vsc450();
        let (a1, p1) = clock_generator_overhead(&hal(1, Strategy::Integrated), &lib);
        assert_eq!((a1, p1), (0.0, 0.0), "single clock needs no generator");
        let (a2, p2) = clock_generator_overhead(&hal(2, Strategy::Integrated), &lib);
        let (a3, p3) = clock_generator_overhead(&hal(3, Strategy::Integrated), &lib);
        assert!(a3 > a2 && a2 > 0.0);
        assert!(p3 > p2 && p2 > 0.0);
        // The overhead stays a modest fraction of a datapath's power.
        assert!(p3 < 1.0, "generator power {p3} mW is implausible");
    }

    #[test]
    fn per_component_ranking_is_sorted_and_complete() {
        let nl = hal(2, Strategy::Integrated);
        let lib = TechLibrary::vsc450();
        let res = mc_sim::simulate(
            &nl,
            &mc_sim::SimConfig::new(PowerMode::multiclock(), 100, 7),
        );
        let ranked = per_component_power(&nl, &res.activity, &lib);
        assert_eq!(ranked.len(), nl.num_components());
        for pair in ranked.windows(2) {
            assert!(pair[0].mw >= pair[1].mw);
        }
        // A multiplier should appear near the top on HAL.
        let top5: Vec<&str> = ranked[..5].iter().map(|c| c.label.as_str()).collect();
        assert!(
            top5.iter().any(|l| l.starts_with("alu")),
            "no ALU in the top consumers: {top5:?}"
        );
    }

    #[test]
    fn dpm_power_splits_across_phases() {
        let nl = hal(2, Strategy::Integrated);
        let lib = TechLibrary::vsc450();
        let res = mc_sim::simulate(
            &nl,
            &mc_sim::SimConfig::new(PowerMode::multiclock(), 100, 7),
        );
        let dpms = per_dpm_power(&nl, &res.activity, &lib);
        assert_eq!(dpms.len(), 2);
        for (phase, mw) in &dpms {
            assert!(*mw > 0.0, "{phase} draws nothing");
        }
        // The split must account for (most of) the attributable power.
        let total: f64 = per_component_power(&nl, &res.activity, &lib)
            .iter()
            .map(|c| c.mw)
            .sum();
        let dpm_sum: f64 = dpms.iter().map(|(_, mw)| mw).sum();
        assert!(dpm_sum <= total + 1e-9);
        assert!(dpm_sum > 0.8 * total, "dpm {dpm_sum} vs comps {total}");
    }

    #[test]
    fn reports_render() {
        let nl = hal(2, Strategy::Integrated);
        let lib = TechLibrary::vsc450();
        let rep = evaluate_design(&nl, PowerMode::multiclock(), &lib, 50, 7);
        let s = rep.to_string();
        assert!(s.contains("mW"));
        assert!(rep.power.to_string().contains("clk"));
        assert!(rep.area.to_string().contains("alu"));
        assert!(rep.power_ci.is_none(), "single-seed runs carry no CI");
    }

    #[test]
    fn monte_carlo_report_averages_the_seeds() {
        let nl = hal(2, Strategy::Integrated);
        let lib = TechLibrary::vsc450();
        let mode = PowerMode::multiclock();
        let seeds = derive_seeds(7, 4);
        let activities: Vec<mc_sim::Activity> =
            mc_sim::simulate_seeds(&nl, mode, 60, &seeds, 4, false)
                .into_iter()
                .map(|r| r.activity)
                .collect();
        let mc = evaluate_design_monte_carlo(&nl, mode, &lib, &activities);
        let ci = mc.power_ci.expect("multi-seed report carries a CI");
        assert_eq!(ci.seeds, 4);
        assert!((ci.mean_mw - mc.power.total_mw).abs() < 1e-12);
        assert!(ci.ci95_mw > 0.0, "independent seeds have spread");
        assert!(ci.to_string().contains("95 % CI"));
        // The mean equals the hand-averaged per-seed totals.
        let mean: f64 = activities
            .iter()
            .map(|a| estimate_power(&nl, a, &lib).total_mw)
            .sum::<f64>()
            / 4.0;
        assert!((mc.power.total_mw - mean).abs() < 1e-12);
        // Seed 0 is the base seed, so lane 0 reprices the scalar run.
        let single = evaluate_design(&nl, mode, &lib, 60, 7);
        let first = estimate_power(&nl, &activities[0], &lib);
        assert_eq!(first, single.power);
    }

    #[test]
    fn adaptive_evaluation_stops_early_when_converged() {
        let nl = hal(2, Strategy::Integrated);
        let lib = TechLibrary::vsc450();
        let mode = PowerMode::multiclock();
        // A generous threshold stops at the first CI check (one batch).
        let loose = evaluate_design_monte_carlo_adaptive(
            &nl,
            mode,
            &lib,
            &MonteCarloConfig {
                computations: 40,
                base_seed: 7,
                max_seeds: 32,
                lanes: 4,
                backend: mc_sim::BatchBackend::Batched,
                rel_ci: Some(0.5),
            },
        );
        assert_eq!(loose.power_ci.unwrap().seeds, 4);
        // An unreachable threshold runs the full budget.
        let tight = evaluate_design_monte_carlo_adaptive(
            &nl,
            mode,
            &lib,
            &MonteCarloConfig {
                computations: 40,
                base_seed: 7,
                max_seeds: 8,
                lanes: 4,
                backend: mc_sim::BatchBackend::Batched,
                rel_ci: Some(0.0),
            },
        );
        assert_eq!(tight.power_ci.unwrap().seeds, 8);
        // Determinism: identical configurations, identical reports.
        let again = evaluate_design_monte_carlo_adaptive(
            &nl,
            mode,
            &lib,
            &MonteCarloConfig {
                computations: 40,
                base_seed: 7,
                max_seeds: 8,
                lanes: 4,
                backend: mc_sim::BatchBackend::Batched,
                rel_ci: Some(0.0),
            },
        );
        assert_eq!(tight.power, again.power);
        assert_eq!(tight.power_ci, again.power_ci);
    }

    #[test]
    fn derived_seeds_start_at_the_base() {
        let seeds = derive_seeds(42, 3);
        assert_eq!(seeds[0], 42);
        assert_eq!(seeds.len(), 3);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "seeds must be distinct");
    }
}
