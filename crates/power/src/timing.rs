//! Static timing analysis of a synthesised netlist: the worst
//! register-to-register combinational path and the implied maximum clock
//! frequency.
//!
//! This backs the paper's "no loss of performance" claim with a check:
//! under the multi-clock scheme every operation still completes within
//! one *system* clock period (the phase clocks only gate which latches
//! capture), so a multi-clock design is viable at the target `f` exactly
//! when its critical path fits the period — same condition as the
//! conventional design.

use mc_rtl::{ComponentKind, Netlist};
use mc_tech::{MemKind, TechLibrary};

/// The timing summary of one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Worst register-to-register path (ns), including clock-to-Q, logic,
    /// interconnect and setup.
    pub critical_path_ns: f64,
    /// Maximum system clock frequency (MHz) implied by the critical path.
    pub fmax_mhz: f64,
    /// Whether the design meets the library's reporting frequency.
    pub meets_target: bool,
}

/// Computes the worst register-to-register path of `netlist` under `lib`'s
/// delay model.
#[must_use]
pub fn analyze_timing(netlist: &Netlist, lib: &TechLibrary) -> TimingReport {
    let width = netlist.width();
    // Arrival time at each net (ns after the clock edge).
    let mut arrival = vec![0.0f64; netlist.num_nets()];
    for c in netlist.component_ids() {
        let comp = netlist.component(c);
        let out = comp.output();
        let launch = match comp.kind() {
            ComponentKind::Mem { kind, .. } => lib.mem_clk_to_q_ns(*kind),
            // Primary inputs settle from the environment's registers at a
            // comparable clock-to-Q; constants are static.
            ComponentKind::Input => lib.mem_clk_to_q_ns(MemKind::Dff),
            ComponentKind::Const { .. } => 0.0,
            _ => continue,
        };
        arrival[out.index()] = launch + lib.wire_delay_ns(netlist.receivers_of(out).len());
    }
    for &c in netlist.combinational_order() {
        let comp = netlist.component(c);
        let inputs_ready = comp
            .data_inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0, f64::max);
        let delay = match comp.kind() {
            ComponentKind::Mux { inputs } => lib.mux_delay_ns(inputs.len()),
            ComponentKind::Alu { fs, .. } => lib.alu_delay_ns(*fs, width),
            _ => unreachable!("combinational order holds only muxes and ALUs"),
        };
        let out = comp.output();
        arrival[out.index()] =
            inputs_ready + delay + lib.wire_delay_ns(netlist.receivers_of(out).len());
    }
    // The path ends at a memory element's data input plus setup.
    let mut critical: f64 = 0.0;
    for mem in netlist.mems() {
        if let ComponentKind::Mem { kind, input, .. } = netlist.component(mem.comp()).kind() {
            critical = critical.max(arrival[input.index()] + lib.mem_setup_ns(*kind));
        }
    }
    // Supply-voltage derating: delays stretch as the supply approaches
    // the threshold (see `TechLibrary::delay_derating`).
    let critical = critical * lib.delay_derating();
    let fmax_mhz = if critical > 0.0 {
        1000.0 / critical
    } else {
        f64::INFINITY
    };
    TimingReport {
        critical_path_ns: critical,
        fmax_mhz,
        meets_target: fmax_mhz >= lib.clock_mhz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;

    fn netlist(n: u32) -> Netlist {
        let bm = benchmarks::facet();
        let strategy = if n == 1 {
            Strategy::Conventional
        } else {
            Strategy::Integrated
        };
        allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(strategy, ClockScheme::new(n).unwrap()),
        )
        .unwrap()
        .netlist
    }

    #[test]
    fn critical_path_is_positive_and_fmax_consistent() {
        let lib = TechLibrary::vsc450();
        let t = analyze_timing(&netlist(1), &lib);
        assert!(t.critical_path_ns > 0.0);
        assert!((t.fmax_mhz - 1000.0 / t.critical_path_ns).abs() < 1e-9);
    }

    #[test]
    fn every_paper_design_meets_the_target_frequency() {
        // The "no performance loss" premise: all five styles of all four
        // benchmarks must close timing at the reporting frequency.
        let lib = TechLibrary::vsc450();
        for bm in benchmarks::paper_benchmarks() {
            let conv = allocate(
                &bm.dfg,
                &bm.schedule,
                &AllocOptions::new(Strategy::Conventional, ClockScheme::single()),
            )
            .unwrap();
            let t = analyze_timing(&conv.netlist, &lib);
            assert!(t.meets_target, "{} conventional: {t:?}", bm.name());
            for n in [1u32, 2, 3] {
                let dp = allocate(
                    &bm.dfg,
                    &bm.schedule,
                    &AllocOptions::new(Strategy::Integrated, ClockScheme::new(n).unwrap()),
                )
                .unwrap();
                let t = analyze_timing(&dp.netlist, &lib);
                assert!(t.meets_target, "{} n={n}: {t:?}", bm.name());
            }
        }
    }

    #[test]
    fn multiclock_critical_path_is_comparable_to_conventional() {
        // The phase clocks must not lengthen the combinational paths by
        // more than mux restructuring noise.
        let lib = TechLibrary::vsc450();
        let t1 = analyze_timing(&netlist(1), &lib);
        let t3 = analyze_timing(&netlist(3), &lib);
        assert!(
            t3.critical_path_ns < t1.critical_path_ns * 1.3,
            "3-clock path {} vs conventional {}",
            t3.critical_path_ns,
            t1.critical_path_ns
        );
    }

    #[test]
    fn wider_datapaths_are_slower() {
        let lib = TechLibrary::vsc450();
        let build = |w: u8| {
            let bm = benchmarks::hal_w(w);
            allocate(
                &bm.dfg,
                &bm.schedule,
                &AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap()),
            )
            .unwrap()
            .netlist
        };
        let t4 = analyze_timing(&build(4), &lib);
        let t16 = analyze_timing(&build(16), &lib);
        assert!(t16.critical_path_ns > t4.critical_path_ns);
    }
}
