//! Power and area estimation for synthesised datapaths — the COMPASS-style
//! `P = f·C_L·V²` transition-counting method of the paper's §5.1, plus the
//! closed-form §2 analysis.
//!
//! # Example: evaluate a design the way the paper's tables do
//!
//! ```
//! use mc_alloc::{allocate, AllocOptions, Strategy};
//! use mc_clocks::ClockScheme;
//! use mc_dfg::benchmarks;
//! use mc_power::evaluate_design;
//! use mc_rtl::PowerMode;
//! use mc_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bm = benchmarks::facet();
//! let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2)?);
//! let dp = allocate(&bm.dfg, &bm.schedule, &opts)?;
//! let lib = TechLibrary::vsc450();
//! let report = evaluate_design(&dp.netlist, PowerMode::multiclock(), &lib, 500, 42);
//! println!(
//!     "{}: {:.2} mW, {:.0} λ², ALUs {}",
//!     report.name,
//!     report.power.total_mw,
//!     report.area.total_lambda2,
//!     report.stats.alu_summary()
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
mod model;
pub mod profile;
pub mod timing;

pub use model::{
    clock_generator_overhead, derive_seeds, estimate_area, estimate_power, evaluate_design,
    evaluate_design_monte_carlo, evaluate_design_monte_carlo_adaptive,
    evaluate_design_with_activity, per_component_power, per_dpm_power, AreaReport, ComponentPower,
    DesignReport, MonteCarloConfig, PowerCi, PowerReport,
};
