//! Power-over-time profiles: prices per-step activity into a per-step
//! power series, making the multi-clock phase pattern visible (each
//! partition draws power only around its own phase's steps).
//!
//! The per-step pricing uses design-average capacitances (total component
//! capacitance spread over total events), so the profile is approximate
//! in its split between mechanisms but exact in total: the series'
//! average equals the aggregate power estimate.

use mc_rtl::{ComponentKind, Netlist};
use mc_sim::Activity;
use mc_tech::{MemKind, TechLibrary};

/// A per-control-step power series (mW per step).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerProfile {
    /// Power per simulated step (mW).
    pub steps_mw: Vec<f64>,
    /// The controller period (steps per computation).
    pub period: u32,
}

impl PowerProfile {
    /// Average power over the whole run (mW).
    #[must_use]
    pub fn average_mw(&self) -> f64 {
        if self.steps_mw.is_empty() {
            0.0
        } else {
            self.steps_mw.iter().sum::<f64>() / self.steps_mw.len() as f64
        }
    }

    /// Peak single-step power (mW).
    #[must_use]
    pub fn peak_mw(&self) -> f64 {
        self.steps_mw.iter().copied().fold(0.0, f64::max)
    }

    /// Average power of each control step *within* the period, folding all
    /// computations together — the phase activity pattern.
    #[must_use]
    pub fn folded(&self) -> Vec<f64> {
        let p = self.period as usize;
        if p == 0 || self.steps_mw.is_empty() {
            return Vec::new();
        }
        let mut sums = vec![0.0; p];
        let mut counts = vec![0usize; p];
        for (i, &mw) in self.steps_mw.iter().enumerate() {
            sums[i % p] += mw;
            counts[i % p] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Renders the folded profile as an ASCII bar chart.
    #[must_use]
    pub fn render_folded(&self) -> String {
        use std::fmt::Write as _;
        let folded = self.folded();
        let peak = folded.iter().copied().fold(0.0, f64::max).max(1e-12);
        let mut s = String::new();
        for (i, mw) in folded.iter().enumerate() {
            let bars = ((mw / peak) * 40.0).round() as usize;
            let _ = writeln!(s, "T{:<3} {:>7.3} mW |{}", i + 1, mw, "#".repeat(bars));
        }
        s
    }
}

/// Builds the per-step power profile from a profiled simulation.
///
/// `activity.per_step` must be present (run the simulation with
/// [`SimConfig::with_profile`](mc_sim::SimConfig::with_profile)).
///
/// # Errors
///
/// Returns [`NoProfile`] when the activity carries no per-step counters.
pub fn power_profile(
    netlist: &Netlist,
    activity: &Activity,
    lib: &TechLibrary,
) -> Result<PowerProfile, NoProfile> {
    let steps = activity.per_step.as_ref().ok_or(NoProfile)?;
    let width = netlist.width();
    let w = f64::from(width);

    // Design-average capacitance per event class.
    let mut net_cap = 0.0;
    let mut nets = 0usize;
    for n in netlist.net_ids() {
        net_cap += lib.wire_cap_per_bit(netlist.receivers_of(n).len());
        nets += 1;
    }
    let avg_net_cap = if nets == 0 {
        0.0
    } else {
        net_cap / nets as f64
    };

    let mut alu_cap = 0.0;
    let mut alus = 0usize;
    let mut clock_cap = 0.0;
    let mut store_cap = 0.0;
    let mut mems = 0usize;
    for c in netlist.component_ids() {
        match netlist.component(c).kind() {
            ComponentKind::Alu { fs, .. } => {
                alu_cap += lib.alu_internal_cap(*fs, width);
                alus += 1;
            }
            ComponentKind::Mem { kind, .. } => {
                clock_cap += lib.mem_clock_cap(*kind, width);
                store_cap += lib.mem_store_cap_per_bit(*kind);
                mems += 1;
            }
            _ => {}
        }
    }
    let avg_alu_cap = if alus == 0 {
        0.0
    } else {
        alu_cap / alus as f64
    };
    let avg_clock_cap = if mems == 0 {
        lib.mem_clock_cap(MemKind::Latch, width)
    } else {
        clock_cap / mems as f64
    };
    let avg_store_cap = if mems == 0 {
        lib.mem_store_cap_per_bit(MemKind::Latch)
    } else {
        store_cap / mems as f64
    };

    let steps_mw = steps
        .iter()
        .map(|s| {
            let pj = s.net_toggles as f64 * lib.toggle_energy(avg_net_cap)
                + s.input_toggles as f64 / (2.0 * w) * lib.full_swing_energy(avg_alu_cap)
                + s.clock_pulses as f64 * lib.full_swing_energy(avg_clock_cap)
                + s.store_toggles as f64 * lib.toggle_energy(avg_store_cap)
                + s.control_toggles as f64 * lib.toggle_energy(lib.controller_cap_per_toggle())
                + lib.full_swing_energy(lib.controller_clock_cap());
            lib.power_mw(pj)
        })
        .collect();
    Ok(PowerProfile {
        steps_mw,
        period: netlist.controller().len(),
    })
}

/// Error returned when profiling data is absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoProfile;

impl std::fmt::Display for NoProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation was run without profiling; enable SimConfig::with_profile"
        )
    }
}

impl std::error::Error for NoProfile {}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;
    use mc_rtl::PowerMode;
    use mc_sim::{simulate, SimConfig};

    fn profiled(n: u32) -> (Netlist, Activity) {
        let bm = benchmarks::hal();
        let dp = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, ClockScheme::new(n).unwrap()),
        )
        .unwrap();
        let cfg = SimConfig::new(PowerMode::multiclock(), 50, 7).with_profile();
        let res = simulate(&dp.netlist, &cfg);
        (dp.netlist, res.activity)
    }

    #[test]
    fn profile_has_one_entry_per_step() {
        let (nl, act) = profiled(2);
        let p = power_profile(&nl, &act, &TechLibrary::vsc450()).unwrap();
        assert_eq!(p.steps_mw.len() as u64, act.steps);
        assert!(p.average_mw() > 0.0);
        assert!(p.peak_mw() >= p.average_mw());
    }

    #[test]
    fn folded_profile_has_period_entries() {
        let (nl, act) = profiled(2);
        let p = power_profile(&nl, &act, &TechLibrary::vsc450()).unwrap();
        assert_eq!(p.folded().len(), nl.controller().len() as usize);
        let render = p.render_folded();
        assert_eq!(render.lines().count(), nl.controller().len() as usize);
        assert!(render.contains("mW"));
    }

    #[test]
    fn unprofiled_activity_is_rejected() {
        let bm = benchmarks::hal();
        let dp = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap()),
        )
        .unwrap();
        let res = simulate(&dp.netlist, &SimConfig::new(PowerMode::multiclock(), 5, 7));
        assert!(power_profile(&dp.netlist, &res.activity, &TechLibrary::vsc450()).is_err());
    }

    #[test]
    fn profile_varies_across_the_period() {
        // Different steps execute different operations, so the folded
        // profile is not flat.
        let (nl, act) = profiled(3);
        let p = power_profile(&nl, &act, &TechLibrary::vsc450()).unwrap();
        let folded = p.folded();
        let min = folded.iter().copied().fold(f64::INFINITY, f64::min);
        let max = folded.iter().copied().fold(0.0, f64::max);
        assert!(max > min * 1.05, "profile suspiciously flat: {folded:?}");
    }
}
