//! Closed-form reproduction of the paper's §2 motivating analysis:
//! component busy fractions under overlapped computations, and the
//! capacitance conditions under which the multi-clock scheme wins —
//! plus the Monte-Carlo summary statistics behind multi-seed power
//! estimation (mean, variance, 95 % confidence interval, and the
//! sequential-batch early-stopping rule).

/// Busy fraction of a component that operates in `busy_steps` of a `t`-step
/// behaviour whose consecutive computations overlap by `overlap` steps
/// (the paper overlaps the first and last step: `overlap = 1`, giving an
/// effective period of `t - overlap`).
///
/// For the §2.2 example (`t = 5`, overlap 1): a Circuit 1 ALU busy in 3
/// steps is busy 3/4 = 75 % of the time; a Circuit 2 ALU busy in 2 steps
/// is busy 2/4 = 50 %.
///
/// # Panics
///
/// Panics if `overlap >= t`.
#[must_use]
pub fn busy_fraction(busy_steps: u32, t: u32, overlap: u32) -> f64 {
    assert!(overlap < t, "overlap must leave a positive period");
    f64::from(busy_steps) / f64::from(t - overlap)
}

/// §2.1, no power management: the `n`-clock circuit beats the single-clock
/// circuit when the sum of its partition capacitances is below `n` times
/// the single-clock capacitance (`C21 + C22 < 2·C1` for two clocks).
#[must_use]
pub fn wins_without_power_management(partition_caps: &[f64], single_clock_cap: f64) -> bool {
    let sum: f64 = partition_caps.iter().sum();
    sum < partition_caps.len() as f64 * single_clock_cap
}

/// §2.2, against conventional gated-clock management: with the paper's
/// accounting `P1 = busy1·C1·V²·f` and `Pn = busy_n·ΣC·V²·f` (the phase
/// frequency `f/n` is already folded into the busy fraction), the scheme
/// wins when `busy_n · ΣC_partitions < busy1 · C1`. The paper's
/// `C21 + C22 < 3/2·C1` instantiates `busy1 = 3/4`, `busy_n = 1/2`.
#[must_use]
pub fn wins_against_gated_clocks(
    partition_caps: &[f64],
    single_clock_cap: f64,
    busy1: f64,
    busy_n: f64,
) -> bool {
    let sum: f64 = partition_caps.iter().sum();
    busy_n * sum < busy1 * single_clock_cap
}

/// The capacitance headroom of the multi-clock scheme vs. gated clocks:
/// the largest `ΣC_partitions / C1` ratio that still saves power
/// (`busy1 / busy_n`; 3/2 for the paper's example).
#[must_use]
pub fn capacitance_headroom(busy1: f64, busy_n: f64) -> f64 {
    busy1 / busy_n
}

/// The paper's crude §2.2 estimate of the power difference between the
/// conventionally managed Circuit 1 and the two-clock Circuit 2:
/// `P1 − P2 ≈ 3/4·C_R·V²·f` (register capacitance `C_R`, supply `v`,
/// frequency `f_mhz` in MHz; result in mW).
#[must_use]
pub fn crude_register_advantage_mw(c_r_pf: f64, v: f64, f_mhz: f64) -> f64 {
    0.75 * c_r_pf * v * v * f_mhz / 1000.0
}

/// Summary statistics of a Monte-Carlo sample set (per-seed power
/// totals, typically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloStats {
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (`n − 1` denominator; 0 for `n < 2`).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95 % confidence interval,
    /// `1.96·s/√n` (0 for `n < 2`).
    pub ci95_half_width: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Computes mean, unbiased variance and the 95 % CI half-width of
/// `samples`. Summation runs in slice order, so identical inputs yield
/// bit-identical statistics.
#[must_use]
pub fn monte_carlo_stats(samples: &[f64]) -> MonteCarloStats {
    let n = samples.len();
    if n == 0 {
        return MonteCarloStats {
            mean: 0.0,
            variance: 0.0,
            std_dev: 0.0,
            ci95_half_width: 0.0,
            samples: 0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let variance = if n < 2 {
        0.0
    } else {
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64
    };
    let std_dev = variance.sqrt();
    let ci95_half_width = if n < 2 {
        0.0
    } else {
        1.96 * std_dev / (n as f64).sqrt()
    };
    MonteCarloStats {
        mean,
        variance,
        std_dev,
        ci95_half_width,
        samples: n,
    }
}

/// The sequential-batch early-stopping rule: after each completed batch
/// of seeds, stop once the 95 % CI half-width falls to `rel_ci` of the
/// absolute mean (e.g. `0.01` = ±1 %). Requires at least two samples —
/// a single sample has no variance estimate — and treats a zero mean as
/// unconverged unless the half-width is exactly zero.
#[must_use]
pub fn ci_converged(stats: &MonteCarloStats, rel_ci: f64) -> bool {
    stats.samples >= 2 && stats.ci95_half_width <= rel_ci * stats.mean.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_busy_fractions() {
        // Circuit 1 ALUs: busy 3 steps of an overlapped 5-step behaviour.
        assert!((busy_fraction(3, 5, 1) - 0.75).abs() < 1e-12);
        // Circuit 2 components: busy 2 steps.
        assert!((busy_fraction(2, 5, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn full_overlap_panics() {
        let _ = busy_fraction(1, 3, 3);
    }

    #[test]
    fn no_pm_condition_matches_paper() {
        // C21 + C22 < 2 C1.
        assert!(wins_without_power_management(&[0.8, 1.0], 1.0));
        assert!(!wins_without_power_management(&[1.2, 1.0], 1.0));
    }

    #[test]
    fn gated_condition_matches_paper() {
        // C21 + C22 < 3/2 C1 with busy fractions 3/4 and 1/2.
        assert!(wins_against_gated_clocks(&[0.7, 0.7], 1.0, 0.75, 0.5));
        assert!(!wins_against_gated_clocks(&[0.8, 0.8], 1.0, 0.75, 0.5));
        assert!((capacitance_headroom(0.75, 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn crude_advantage_is_positive() {
        let adv = crude_register_advantage_mw(0.5, 4.65, 20.0);
        assert!(adv > 0.0);
        // 0.75 × 0.5 pF × 21.6 V² × 20 MHz = 162 µW.
        assert!((adv - 0.75 * 0.5 * 4.65 * 4.65 * 20.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_stats_match_hand_computation() {
        let s = monte_carlo_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.samples, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Unbiased variance of 1..4 is 5/3.
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.ci95_half_width - 1.96 * s.std_dev / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sample_sets_are_safe() {
        let empty = monte_carlo_stats(&[]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.mean, 0.0);
        let one = monte_carlo_stats(&[7.0]);
        assert_eq!(one.variance, 0.0);
        assert_eq!(one.ci95_half_width, 0.0);
        assert!(!ci_converged(&one, 0.5), "one sample never converges");
    }

    #[test]
    fn single_sample_stats_are_zero_not_nan() {
        // Regression: the n−1 variance denominator must not be applied at
        // n = 1, where it would produce 0/0 = NaN std and CI.
        let one = monte_carlo_stats(&[3.25]);
        assert_eq!(one.samples, 1);
        assert_eq!(one.mean, 3.25);
        assert_eq!(one.std_dev, 0.0, "std must be exactly 0, not NaN");
        assert_eq!(one.ci95_half_width, 0.0, "CI must be exactly 0, not NaN");
        assert!(one.std_dev.is_finite() && one.ci95_half_width.is_finite());
    }

    #[test]
    fn convergence_requires_a_tight_interval() {
        let tight = monte_carlo_stats(&[10.0, 10.01, 9.99, 10.0]);
        assert!(ci_converged(&tight, 0.01));
        let loose = monte_carlo_stats(&[5.0, 15.0, 2.0, 18.0]);
        assert!(!ci_converged(&loose, 0.01));
    }
}
