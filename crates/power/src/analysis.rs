//! Closed-form reproduction of the paper's §2 motivating analysis:
//! component busy fractions under overlapped computations, and the
//! capacitance conditions under which the multi-clock scheme wins.

/// Busy fraction of a component that operates in `busy_steps` of a `t`-step
/// behaviour whose consecutive computations overlap by `overlap` steps
/// (the paper overlaps the first and last step: `overlap = 1`, giving an
/// effective period of `t - overlap`).
///
/// For the §2.2 example (`t = 5`, overlap 1): a Circuit 1 ALU busy in 3
/// steps is busy 3/4 = 75 % of the time; a Circuit 2 ALU busy in 2 steps
/// is busy 2/4 = 50 %.
///
/// # Panics
///
/// Panics if `overlap >= t`.
#[must_use]
pub fn busy_fraction(busy_steps: u32, t: u32, overlap: u32) -> f64 {
    assert!(overlap < t, "overlap must leave a positive period");
    f64::from(busy_steps) / f64::from(t - overlap)
}

/// §2.1, no power management: the `n`-clock circuit beats the single-clock
/// circuit when the sum of its partition capacitances is below `n` times
/// the single-clock capacitance (`C21 + C22 < 2·C1` for two clocks).
#[must_use]
pub fn wins_without_power_management(partition_caps: &[f64], single_clock_cap: f64) -> bool {
    let sum: f64 = partition_caps.iter().sum();
    sum < partition_caps.len() as f64 * single_clock_cap
}

/// §2.2, against conventional gated-clock management: with the paper's
/// accounting `P1 = busy1·C1·V²·f` and `Pn = busy_n·ΣC·V²·f` (the phase
/// frequency `f/n` is already folded into the busy fraction), the scheme
/// wins when `busy_n · ΣC_partitions < busy1 · C1`. The paper's
/// `C21 + C22 < 3/2·C1` instantiates `busy1 = 3/4`, `busy_n = 1/2`.
#[must_use]
pub fn wins_against_gated_clocks(
    partition_caps: &[f64],
    single_clock_cap: f64,
    busy1: f64,
    busy_n: f64,
) -> bool {
    let sum: f64 = partition_caps.iter().sum();
    busy_n * sum < busy1 * single_clock_cap
}

/// The capacitance headroom of the multi-clock scheme vs. gated clocks:
/// the largest `ΣC_partitions / C1` ratio that still saves power
/// (`busy1 / busy_n`; 3/2 for the paper's example).
#[must_use]
pub fn capacitance_headroom(busy1: f64, busy_n: f64) -> f64 {
    busy1 / busy_n
}

/// The paper's crude §2.2 estimate of the power difference between the
/// conventionally managed Circuit 1 and the two-clock Circuit 2:
/// `P1 − P2 ≈ 3/4·C_R·V²·f` (register capacitance `C_R`, supply `v`,
/// frequency `f_mhz` in MHz; result in mW).
#[must_use]
pub fn crude_register_advantage_mw(c_r_pf: f64, v: f64, f_mhz: f64) -> f64 {
    0.75 * c_r_pf * v * v * f_mhz / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_busy_fractions() {
        // Circuit 1 ALUs: busy 3 steps of an overlapped 5-step behaviour.
        assert!((busy_fraction(3, 5, 1) - 0.75).abs() < 1e-12);
        // Circuit 2 components: busy 2 steps.
        assert!((busy_fraction(2, 5, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn full_overlap_panics() {
        let _ = busy_fraction(1, 3, 3);
    }

    #[test]
    fn no_pm_condition_matches_paper() {
        // C21 + C22 < 2 C1.
        assert!(wins_without_power_management(&[0.8, 1.0], 1.0));
        assert!(!wins_without_power_management(&[1.2, 1.0], 1.0));
    }

    #[test]
    fn gated_condition_matches_paper() {
        // C21 + C22 < 3/2 C1 with busy fractions 3/4 and 1/2.
        assert!(wins_against_gated_clocks(&[0.7, 0.7], 1.0, 0.75, 0.5));
        assert!(!wins_against_gated_clocks(&[0.8, 0.8], 1.0, 0.75, 0.5));
        assert!((capacitance_headroom(0.75, 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn crude_advantage_is_positive() {
        let adv = crude_register_advantage_mw(0.5, 4.65, 20.0);
        assert!(adv > 0.0);
        // 0.75 × 0.5 pF × 21.6 V² × 20 MHz = 162 µW.
        assert!((adv - 0.75 * 0.5 * 4.65 * 4.65 * 20.0 / 1000.0).abs() < 1e-12);
    }
}
