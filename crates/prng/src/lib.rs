//! Deterministic pseudo-random number generation with zero external
//! dependencies, so the workspace builds hermetically (no network, no
//! vendored crates).
//!
//! Two generators:
//!
//! * [`SplitMix64`] — a tiny 64-bit mixer; used for seeding and for
//!   one-shot hashing-style draws.
//! * [`Xoshiro256`] — xoshiro256** by Blackman & Vigna, the workspace's
//!   workhorse stream generator. Seeded from a single `u64` via
//!   SplitMix64, exactly as the reference implementation recommends.
//!
//! Both are fully deterministic per seed and stable across platforms and
//! Rust versions — stimulus vectors, random DFGs and equivalence-check
//! inputs reproduce bit-for-bit everywhere.
//!
//! ```
//! use mc_prng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(42);
//! let mut b = Xoshiro256::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// SplitMix64 (Steele, Lea & Flood): a fast, well-mixed 64-bit generator
/// with a trivially splittable state. Used here to expand one `u64` seed
/// into the 256-bit xoshiro state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — 256 bits of state, period 2²⁵⁶−1, excellent statistical
/// quality for non-cryptographic use (this workspace only ever drives
/// simulation stimulus and test-case generation with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the 256-bit state from a single `u64` via [`SplitMix64`],
    /// following the reference implementation's seeding advice.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `0.0..=1.0`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform value in `0..n` without modulo bias (rejection sampling).
    /// Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Reject draws from the final partial copy of `0..n` in u64 space.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// A uniform value in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// A uniformly chosen element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            items.get(self.below(items.len() as u64) as usize)
        }
    }
}

/// The stream count of [`Xoshiro256x64`]: one stream per bit of a
/// machine word, matching bit-sliced simulation populations.
pub const XOSHIRO_STREAMS: usize = 64;

/// 64 interleaved [`Xoshiro256`] streams in structure-of-arrays form.
///
/// Stream `l` produces exactly the sequence of
/// `Xoshiro256::seed_from_u64(seeds[l])` — same seeding expansion, same
/// state transition — but one [`Xoshiro256x64::next_u64s`] call advances
/// all 64 streams at once. The state lives as four 64-lane planes, so
/// the update loop is 64 independent word recurrences: the compiler can
/// vectorize across streams, and the ~3-cycle serial dependency of a
/// single xoshiro stream stops being the throughput limit. Bulk
/// consumers drawing one value per stream per position (bit-sliced
/// Monte-Carlo stimulus) get the same numbers as 64 scalar generators
/// for a fraction of the time.
#[derive(Debug, Clone)]
pub struct Xoshiro256x64 {
    /// `s[k][l]` is state word `k` of stream `l`.
    s: [[u64; XOSHIRO_STREAMS]; 4],
}

impl Xoshiro256x64 {
    /// Seeds stream `l` from `seeds[l]`, each via the same
    /// [`SplitMix64`] expansion as [`Xoshiro256::seed_from_u64`].
    #[must_use]
    pub fn seed_from_u64s(seeds: &[u64; XOSHIRO_STREAMS]) -> Self {
        let mut s = [[0u64; XOSHIRO_STREAMS]; 4];
        for (l, &seed) in seeds.iter().enumerate() {
            let mut sm = SplitMix64::new(seed);
            for plane in &mut s {
                plane[l] = sm.next_u64();
            }
        }
        Xoshiro256x64 { s }
    }

    /// Draws the next output of every stream: `out[l]` receives what
    /// stream `l`'s scalar generator would return next.
    pub fn next_u64s(&mut self, out: &mut [u64; XOSHIRO_STREAMS]) {
        let [s0, s1, s2, s3] = &mut self.s;
        for l in 0..XOSHIRO_STREAMS {
            out[l] = s1[l].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1[l] << 17;
            s2[l] ^= s0[l];
            s3[l] ^= s1[l];
            s1[l] ^= s2[l];
            s0[l] ^= s3[l];
            s2[l] ^= t;
            s3[l] = s3[l].rotate_left(45);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 (from the public-domain
        // splitmix64.c by Sebastiano Vigna).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(99);
        let mut b = Xoshiro256::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues drawn");
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2_000 {
            let v = r.range_inclusive(10, 13);
            assert!((10..=13).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 13;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_inclusive(4, 4), 4);
    }

    #[test]
    fn full_u64_range_does_not_loop_forever() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let _ = r.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn interleaved_streams_match_scalar_generators() {
        let mut seeds = [0u64; XOSHIRO_STREAMS];
        for (l, s) in seeds.iter_mut().enumerate() {
            *s = 1000u64.wrapping_add((l as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let mut soa = Xoshiro256x64::seed_from_u64s(&seeds);
        let mut scalars: Vec<Xoshiro256> = seeds
            .iter()
            .map(|&s| Xoshiro256::seed_from_u64(s))
            .collect();
        let mut out = [0u64; XOSHIRO_STREAMS];
        for draw in 0..200 {
            soa.next_u64s(&mut out);
            for (l, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(out[l], scalar.next_u64(), "stream {l} draw {draw}");
            }
        }
    }

    #[test]
    fn choose_is_uniformish_and_total() {
        let mut r = Xoshiro256::seed_from_u64(13);
        let items = [1, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            let &v = r.choose(&items).unwrap();
            counts[v - 1] += 1;
        }
        for c in counts {
            assert!(c > 700, "badly skewed: {counts:?}");
        }
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
