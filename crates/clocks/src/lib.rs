//! Non-overlapping multi-phase clock schemes (DAC'96 §2–§3).
//!
//! A [`ClockScheme`] divides a system clock of frequency `f` into `n`
//! non-overlapping phase clocks of frequency `f/n`. Control step `t`
//! (1-based) belongs to phase `((t-1) mod n) + 1`; the partition owning
//! that phase is the only one whose memory elements are clocked during
//! step `t`. The *effective* frequency of the whole datapath remains `f`
//! (one control step completes per original clock period), which is the
//! paper's no-performance-loss argument.
//!
//! The paper's §4.1 also maps global steps to *local* steps within each
//! partition ("time steps 1', 2', 3' and 1'', 2''"); [`ClockScheme`]
//! implements that bijection with [`ClockScheme::local_step`] and
//! [`ClockScheme::global_step`].
//!
//! # Examples
//!
//! ```
//! use mc_clocks::{ClockScheme, PhaseId};
//!
//! # fn main() -> Result<(), mc_clocks::ClockError> {
//! let two = ClockScheme::new(2)?;
//! assert_eq!(two.phase_of_step(1)?, PhaseId::new(1));
//! assert_eq!(two.phase_of_step(2)?, PhaseId::new(2));
//! assert_eq!(two.phase_of_step(3)?, PhaseId::new(1));
//! assert_eq!(two.local_step(3)?, 2); // step 3 is the 2nd odd step
//! assert_eq!(two.global_step(2, PhaseId::new(1)), 3);
//! // Step 0 is not a control step: a typed error, not a panic.
//! assert!(two.phase_of_step(0).is_err());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// Identifier of one phase clock (1-based, `1..=n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(u32);

impl PhaseId {
    /// Creates a phase id. Phases are 1-based.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero.
    #[must_use]
    pub fn new(id: u32) -> Self {
        assert!(id >= 1, "phase ids are 1-based");
        PhaseId(id)
    }

    /// The numeric id (`1..=n`).
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Zero-based index (`0..n`), for dense table indexing.
    #[must_use]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CLK{}", self.0)
    }
}

/// Errors constructing or querying a [`ClockScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockError {
    /// Zero clocks requested.
    ZeroClocks,
    /// More clocks than is meaningful (we cap at 16; the paper observes
    /// diminishing returns well before that).
    TooManyClocks(u32),
    /// Control step 0 was queried: steps are 1-based, so step 0 belongs
    /// to no phase and has no local numbering.
    ZeroStep,
}

impl fmt::Display for ClockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockError::ZeroClocks => write!(f, "a clock scheme needs at least one clock"),
            ClockError::TooManyClocks(n) => write!(f, "{n} clocks exceeds the supported 16"),
            ClockError::ZeroStep => {
                write!(f, "control steps are 1-based; step 0 belongs to no phase")
            }
        }
    }
}

impl std::error::Error for ClockError {}

/// A scheme of `n` non-overlapping phase clocks derived from one system
/// clock. `n = 1` degenerates to conventional single-clock operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockScheme {
    n: u32,
}

impl ClockScheme {
    /// Creates a scheme with `n` phases.
    ///
    /// # Errors
    ///
    /// Returns [`ClockError::ZeroClocks`] for `n == 0` and
    /// [`ClockError::TooManyClocks`] for `n > 16`.
    pub fn new(n: u32) -> Result<Self, ClockError> {
        if n == 0 {
            return Err(ClockError::ZeroClocks);
        }
        if n > 16 {
            return Err(ClockError::TooManyClocks(n));
        }
        Ok(ClockScheme { n })
    }

    /// Single-clock scheme (the conventional baseline).
    #[must_use]
    pub fn single() -> Self {
        ClockScheme { n: 1 }
    }

    /// Number of phase clocks `n`.
    #[must_use]
    pub fn num_clocks(&self) -> u32 {
        self.n
    }

    /// Iterates over all phase ids `1..=n`.
    pub fn phases(&self) -> impl Iterator<Item = PhaseId> {
        (1..=self.n).map(PhaseId)
    }

    /// The phase owning global control step `t` (1-based):
    /// `((t-1) mod n) + 1`. This matches the paper's rule that nodes with
    /// `t mod n = k` (and `t mod n = 0 → partition n`) share a partition.
    ///
    /// # Errors
    ///
    /// Returns [`ClockError::ZeroStep`] if `t == 0` (steps are 1-based).
    pub fn phase_of_step(&self, t: u32) -> Result<PhaseId, ClockError> {
        if t == 0 {
            return Err(ClockError::ZeroStep);
        }
        Ok(PhaseId((t - 1) % self.n + 1))
    }

    /// The local step of global step `t` within its partition
    /// (`((t-1) div n) + 1`), the 1', 2', … numbering of the paper's
    /// Fig. 5.
    ///
    /// # Errors
    ///
    /// Returns [`ClockError::ZeroStep`] if `t == 0`.
    pub fn local_step(&self, t: u32) -> Result<u32, ClockError> {
        if t == 0 {
            return Err(ClockError::ZeroStep);
        }
        Ok((t - 1) / self.n + 1)
    }

    /// Inverse of ([`phase_of_step`](Self::phase_of_step),
    /// [`local_step`](Self::local_step)): the global step of local step
    /// `local` in phase `k`, i.e. `(local-1)·n + k` (the paper's
    /// `t_glb = (t_loc - 1)n + k`).
    ///
    /// # Panics
    ///
    /// Panics if `local == 0` or `k > n`.
    #[must_use]
    pub fn global_step(&self, local: u32, k: PhaseId) -> u32 {
        assert!(local >= 1, "local steps are 1-based");
        assert!(
            k.get() <= self.n,
            "phase {k} outside scheme of {} clocks",
            self.n
        );
        (local - 1) * self.n + k.get()
    }

    /// Whether phase `k` is the active phase during global step `t`.
    /// Total: step 0 is not a control step, so no phase is active there.
    #[must_use]
    pub fn is_active(&self, k: PhaseId, t: u32) -> bool {
        self.phase_of_step(t) == Ok(k)
    }

    /// How many of the global steps `1..=total` belong to phase `k` —
    /// i.e. how many clock edges a memory element in partition `k` sees
    /// over `total` system-clock periods. This is the factor-`n` clock
    /// power reduction of the scheme.
    #[must_use]
    pub fn edges_seen(&self, k: PhaseId, total: u32) -> u32 {
        (1..=total).filter(|&t| self.is_active(k, t)).count() as u32
    }

    /// The number of *local* steps partition `k` needs to cover a global
    /// schedule of `length` steps (the length of the partition's local
    /// schedule in the split allocator).
    #[must_use]
    pub fn local_length(&self, k: PhaseId, length: u32) -> u32 {
        (1..=length).filter(|&t| self.is_active(k, t)).count() as u32
    }

    /// Renders an ASCII waveform of the system clock and all phase clocks
    /// over `steps` control steps — the reproduction of the paper's Fig. 2.
    ///
    /// Each control step is drawn as four characters; a phase clock is high
    /// for the second half of the steps it owns (a non-overlapping pulse
    /// per owned step).
    #[must_use]
    pub fn waveform(&self, steps: u32) -> String {
        let mut out = String::new();
        let cell = |high: bool| if high { "__##" } else { "____" };
        out.push_str("Clock  ");
        for _ in 1..=steps {
            out.push_str(cell(true));
        }
        out.push('\n');
        for k in self.phases() {
            // Note: width specifiers only pad via `Formatter::pad`, which
            // our Display does not call — pad the rendered string instead.
            out.push_str(&format!("{:<6} ", k.to_string()));
            for t in 1..=steps {
                out.push_str(cell(self.is_active(k, t)));
            }
            out.push('\n');
        }
        out
    }

    /// Verifies the non-overlap invariant over `1..=total` steps: every
    /// step is owned by exactly one phase. Always true by construction;
    /// exposed for defence-in-depth testing of downstream schemes.
    #[must_use]
    pub fn verify_non_overlapping(&self, total: u32) -> bool {
        (1..=total).all(|t| self.phases().filter(|&k| self.is_active(k, t)).count() == 1)
    }
}

impl fmt::Display for ClockScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-clock scheme (f/{} per phase)", self.n, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_excess_clocks_rejected() {
        assert_eq!(ClockScheme::new(0).unwrap_err(), ClockError::ZeroClocks);
        assert_eq!(
            ClockScheme::new(17).unwrap_err(),
            ClockError::TooManyClocks(17)
        );
        assert!(ClockScheme::new(16).is_ok());
    }

    #[test]
    fn single_clock_owns_everything() {
        let s = ClockScheme::single();
        for t in 1..=10 {
            assert_eq!(s.phase_of_step(t), Ok(PhaseId::new(1)));
            assert_eq!(s.local_step(t), Ok(t));
        }
    }

    #[test]
    fn two_clock_scheme_alternates_odd_even() {
        let s = ClockScheme::new(2).unwrap();
        assert_eq!(s.phase_of_step(1).unwrap().get(), 1);
        assert_eq!(s.phase_of_step(2).unwrap().get(), 2);
        assert_eq!(s.phase_of_step(5).unwrap().get(), 1);
        assert_eq!(s.local_step(1), Ok(1));
        assert_eq!(s.local_step(3), Ok(2));
        assert_eq!(s.local_step(5), Ok(3));
        assert_eq!(s.local_step(2), Ok(1));
        assert_eq!(s.local_step(4), Ok(2));
    }

    #[test]
    fn three_clock_scheme_matches_paper_formula() {
        // Paper: nodes at steps t with t mod n = k go to partition k
        // (1 ≤ k ≤ n-1), t mod n = 0 goes to partition n.
        let s = ClockScheme::new(3).unwrap();
        for t in 1..=30u32 {
            let paper_k = if t % 3 == 0 { 3 } else { t % 3 };
            assert_eq!(s.phase_of_step(t).unwrap().get(), paper_k, "step {t}");
        }
    }

    #[test]
    fn global_local_round_trip() {
        for n in 1..=6u32 {
            let s = ClockScheme::new(n).unwrap();
            for t in 1..=48u32 {
                let k = s.phase_of_step(t).unwrap();
                let l = s.local_step(t).unwrap();
                assert_eq!(s.global_step(l, k), t, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn edges_seen_divides_by_n() {
        let s = ClockScheme::new(3).unwrap();
        assert_eq!(s.edges_seen(PhaseId::new(1), 9), 3);
        assert_eq!(s.edges_seen(PhaseId::new(2), 9), 3);
        assert_eq!(s.edges_seen(PhaseId::new(3), 9), 3);
        // Uneven totals favour early phases.
        assert_eq!(s.edges_seen(PhaseId::new(1), 10), 4);
        assert_eq!(s.edges_seen(PhaseId::new(3), 10), 3);
    }

    #[test]
    fn local_length_partitions_schedule() {
        let s = ClockScheme::new(2).unwrap();
        // 5-step schedule: odd partition gets steps 1,3,5; even gets 2,4.
        assert_eq!(s.local_length(PhaseId::new(1), 5), 3);
        assert_eq!(s.local_length(PhaseId::new(2), 5), 2);
    }

    #[test]
    fn non_overlap_holds() {
        for n in 1..=8 {
            let s = ClockScheme::new(n).unwrap();
            assert!(s.verify_non_overlapping(64));
        }
    }

    #[test]
    fn waveform_has_one_line_per_clock() {
        let s = ClockScheme::new(3).unwrap();
        let w = s.waveform(6);
        assert_eq!(w.lines().count(), 4);
        assert!(w.contains("CLK1"));
        assert!(w.contains("CLK3"));
        // Phase 1 pulses in step 1: the first cell after the label is high.
        let line1 = w.lines().nth(1).unwrap();
        assert!(line1.contains("__##________"));
    }

    #[test]
    fn display_strings() {
        assert_eq!(PhaseId::new(2).to_string(), "CLK2");
        assert_eq!(
            ClockScheme::new(2).unwrap().to_string(),
            "2-clock scheme (f/2 per phase)"
        );
    }

    #[test]
    fn step_zero_is_a_typed_error_not_a_panic() {
        let s = ClockScheme::new(3).unwrap();
        assert_eq!(s.phase_of_step(0), Err(ClockError::ZeroStep));
        assert_eq!(s.local_step(0), Err(ClockError::ZeroStep));
        // No phase is active during the non-step 0.
        for k in s.phases() {
            assert!(!s.is_active(k, 0));
        }
        assert!(ClockError::ZeroStep.to_string().contains("1-based"));
    }

    #[test]
    #[should_panic(expected = "outside scheme")]
    fn phase_out_of_range_panics() {
        let _ = ClockScheme::new(2).unwrap().global_step(1, PhaseId::new(3));
    }
}
