//! Full design-space exploration with Pareto frontiers: enumerate every
//! configuration the paper leaves to the engineer — clock count,
//! allocation strategy, latch vs. DFF, gating, scheduler, supply voltage
//! — evaluate the whole lattice in parallel through the flow's shared
//! artifact cache, and print the frontier over (power, area, latency).
//!
//! The run is deterministic: same seed ⇒ the same frontier, bit for bit,
//! sequentially or on any number of threads.
//!
//! Run with: `cargo run --release --example explore_frontier`

use multiclock::dfg::benchmarks;
use multiclock::explore::{ExploreSpace, Explorer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = ExploreSpace {
        n_max: 4,
        voltages: vec![multiclock::explore::NOMINAL_VOLTS, 3.3],
        stretches: vec![2],
        ..ExploreSpace::default()
    };
    let explorer = Explorer::new().with_space(space).with_computations(200);

    for bm in benchmarks::paper_benchmarks() {
        let report = explorer.run(&bm)?;
        println!("{}", report.render_ranked());
        if let Some(best) = report.best_power() {
            println!(
                "lowest-power frontier point: {} at {:.3} mW\n",
                best.point.label(),
                best.objectives.power_mw
            );
        }
    }

    // The same run again is bit-identical — the explorer's determinism
    // contract, checked here the blunt way.
    let again = explorer.run(&benchmarks::hal())?;
    let first = explorer.run(&benchmarks::hal())?;
    assert_eq!(again.to_json(), first.to_json());
    println!("determinism check: repeated hal exploration is bit-identical");
    Ok(())
}
