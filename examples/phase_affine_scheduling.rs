//! Extension beyond the paper: scheduling *for* the multi-clock scheme.
//!
//! The paper assumes the schedule is fixed before clock assignment. The
//! `phase_affine` scheduler instead delays operations (within a slack
//! budget) until a step owned by the partition of their most expensive
//! operand, so operand reads stay in-partition and idle partitions see no
//! input transitions. The price is latency: each stretch step lengthens
//! the computation, so — unlike the core scheme — this trades throughput
//! for power.
//!
//! Run with: `cargo run --release --example phase_affine_scheduling`

use multiclock::dfg::{benchmarks, scheduler};
use multiclock::{DesignStyle, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:<12} {:>4} {:>9} {:>9} {:>8}",
        "benchmark", "schedule", "len", "mW", "Mλ²", "Δpower"
    );
    for bm in benchmarks::paper_benchmarks() {
        let mut baseline = None;
        for (name, sched) in [
            ("reference", bm.schedule.clone()),
            ("affine +2", scheduler::phase_affine(&bm.dfg, 2, 2)),
            ("affine +4", scheduler::phase_affine(&bm.dfg, 2, 4)),
        ] {
            let synth = Synthesizer::new(bm.dfg.clone(), sched.clone()).with_computations(300);
            // Every design is verified before we quote numbers for it.
            synth.synthesize_verified(DesignStyle::MultiClock(2))?;
            let r = synth.evaluate(DesignStyle::MultiClock(2))?;
            let base = *baseline.get_or_insert(r.power.total_mw);
            println!(
                "{:<10} {:<12} {:>4} {:>9.2} {:>9.2} {:>7.1}%",
                bm.name(),
                name,
                sched.length(),
                r.power.total_mw,
                r.area.total_lambda2 / 1e6,
                100.0 * (r.power.total_mw / base - 1.0)
            );
        }
    }
    println!(
        "\nNote: the stretched schedules lengthen the computation (the `len` column), \
         so unlike the paper's core scheme this is a power/throughput trade-off."
    );
    Ok(())
}
