//! Quickstart: describe a behaviour, schedule it, synthesise it under a
//! two-clock scheme, verify it against the behaviour, and compare its
//! power with the conventional gated-clock design.
//!
//! Run with: `cargo run --example quickstart`

use multiclock::dfg::{scheduler, DfgBuilder, Op};
use multiclock::{DesignStyle, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a behaviour: y = (a + b) * (c - d); z = y + c.
    let mut b = DfgBuilder::new("quickstart", 4);
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let s = b.op_named("s", Op::Add, a, bb);
    let t = b.op_named("t", Op::Sub, c, d);
    let y = b.op_named("y", Op::Mul, s, t);
    let z = b.op_named("z", Op::Add, y, c);
    b.mark_output(y);
    b.mark_output(z);
    let dfg = b.finish()?;
    println!("{dfg}");

    // 2. Schedule it (ASAP here; list/force-directed also available).
    let schedule = scheduler::asap(&dfg);
    println!("scheduled in {} control steps", schedule.length());

    // 3. Synthesise and *verify* the two-clock design: the netlist is
    //    simulated against direct evaluation of the behaviour.
    let synth = Synthesizer::new(dfg, schedule).with_computations(200);
    let design = synth.synthesize_verified(DesignStyle::MultiClock(2))?;
    println!("\nsynthesised netlist:\n{}", design.datapath.netlist);

    // 4. Compare power and area against the conventional baselines.
    for style in [
        DesignStyle::ConventionalNonGated,
        DesignStyle::ConventionalGated,
        DesignStyle::MultiClock(2),
    ] {
        let r = synth.evaluate(style)?;
        println!(
            "{:<34} {:6.2} mW   {:9.0} λ²   ALUs {}",
            style.label(),
            r.power.total_mw,
            r.area.total_lambda2,
            r.stats.alu_summary()
        );
    }
    Ok(())
}
