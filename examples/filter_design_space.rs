//! Design-space exploration for a DSP filter: sweep clock counts and
//! memory-element choices for the biquad IIR section (the paper's Table 3
//! workload) and print the power/area trade-off so a designer can pick a
//! point — the decision the paper's §5.2 discusses ("an obvious trade-off
//! between the amount of power reduction and the amount of area
//! increase").
//!
//! Run with: `cargo run --release --example filter_design_space`

use multiclock::alloc::Strategy;
use multiclock::dfg::benchmarks;
use multiclock::rtl::PowerMode;
use multiclock::tech::MemKind;
use multiclock::{DesignStyle, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bm = benchmarks::biquad();
    let synth = Synthesizer::for_benchmark(&bm).with_computations(300);

    println!("design space for `{}` ({})\n", bm.name(), bm.description);
    println!(
        "{:<44} {:>8} {:>10} {:>7} {:>9}",
        "design point", "mW", "λ²", "mW Δ%", "λ² Δ%"
    );

    let base = synth.evaluate(DesignStyle::ConventionalGated)?;
    let mut points = vec![("gated baseline".to_owned(), base.clone())];
    for n in 1..=4u32 {
        for mem_kind in [MemKind::Latch, MemKind::Dff] {
            let style = DesignStyle::Custom {
                strategy: Strategy::Integrated,
                clocks: n,
                mem_kind,
                transfers: true,
                mode: PowerMode::multiclock(),
            };
            let label = format!(
                "{n} clock(s), {}",
                if mem_kind == MemKind::Latch {
                    "latches"
                } else {
                    "DFFs"
                }
            );
            points.push((label, synth.evaluate(style)?));
        }
    }
    for (label, r) in &points {
        println!(
            "{:<44} {:>8.2} {:>10.0} {:>6.1}% {:>8.1}%",
            label,
            r.power.total_mw,
            r.area.total_lambda2,
            100.0 * (r.power.total_mw / base.power.total_mw - 1.0),
            100.0 * (r.area.total_lambda2 / base.area.total_lambda2 - 1.0)
        );
    }

    // Pareto frontier on (power, area).
    let mut frontier: Vec<&(String, multiclock::power::DesignReport)> = Vec::new();
    for p in &points {
        let dominated = points.iter().any(|q| {
            q.1.power.total_mw < p.1.power.total_mw
                && q.1.area.total_lambda2 <= p.1.area.total_lambda2
        });
        if !dominated {
            frontier.push(p);
        }
    }
    println!("\nPareto-efficient points:");
    for (label, r) in frontier {
        println!(
            "  {label}: {:.2} mW, {:.2} Mλ²",
            r.power.total_mw,
            r.area.total_lambda2 / 1e6
        );
    }
    Ok(())
}
