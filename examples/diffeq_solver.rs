//! The paper's flagship workload end-to-end: the HAL differential-equation
//! body (`y'' + 3xy' + 3y = 0`, Euler integration) synthesised under a
//! three-clock scheme, *executed on the synthesised netlist* for a full
//! integration run, and cross-checked step by step against a software
//! implementation of the same recurrence.
//!
//! Run with: `cargo run --release --example diffeq_solver`

use std::collections::BTreeMap;

use multiclock::dfg::benchmarks;
use multiclock::rtl::PowerMode;
use multiclock::sim::simulate_with_inputs;
use multiclock::{DesignStyle, Synthesizer};

/// One Euler step in software, in the same modular 16-bit arithmetic the
/// datapath implements.
fn euler_step(x: u64, y: u64, u: u64, dx: u64, mask: u64) -> (u64, u64, u64) {
    let m = |v: u64| v & mask;
    let x1 = m(x.wrapping_add(dx));
    let t1 = m(m(3 * x).wrapping_mul(m(u.wrapping_mul(dx))));
    let t2 = m(m(3 * y).wrapping_mul(dx));
    let u1 = m(u.wrapping_sub(t1).wrapping_sub(t2));
    let y1 = m(y.wrapping_add(m(u.wrapping_mul(dx))));
    (x1, y1, u1)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16-bit datapath for a meaningful integration range.
    let bm = benchmarks::hal_w(16);
    let synth = Synthesizer::for_benchmark(&bm).with_computations(200);
    let design = synth.synthesize_verified(DesignStyle::MultiClock(3))?;
    let nl = &design.datapath.netlist;
    println!(
        "synthesised `{}`: {} mems, ALUs {}",
        nl.name(),
        nl.stats().mem_cells,
        nl.stats().alu_summary()
    );

    // Drive the netlist through 12 Euler iterations: the outputs of each
    // computation (x1, y1, u1) become the inputs of the next.
    let mask = 0xFFFFu64;
    let (mut x, mut y, mut u, dx, a) = (0u64, 1000, 50, 3, 60);
    let mut vectors: Vec<BTreeMap<String, u64>> = Vec::new();
    let mut reference = Vec::new();
    for _ in 0..12 {
        let mut v = BTreeMap::new();
        v.insert("x".to_owned(), x);
        v.insert("y".to_owned(), y);
        v.insert("u".to_owned(), u);
        v.insert("dx".to_owned(), dx);
        v.insert("a".to_owned(), a);
        vectors.push(v);
        let (x1, y1, u1) = euler_step(x, y, u, dx, mask);
        reference.push((x1, y1, u1, u64::from(x1 < a)));
        (x, y, u) = (x1, y1, u1);
    }
    let res = simulate_with_inputs(nl, PowerMode::multiclock(), &vectors, false);

    println!("\n step |   x1     y1     u1   c | hardware == software?");
    for (i, (out, expect)) in res.outputs.iter().zip(&reference).enumerate() {
        let ok = out["x1"] == expect.0
            && out["y1"] == expect.1
            && out["u1"] == expect.2
            && out["c"] == expect.3;
        println!(
            "  {:>3} | {:>5} {:>6} {:>6} {:>3} | {}",
            i + 1,
            out["x1"],
            out["y1"],
            out["u1"],
            out["c"],
            if ok { "ok" } else { "MISMATCH" }
        );
        assert!(ok, "netlist diverged from the software Euler step");
    }
    println!(
        "\nall {} iterations match the software reference",
        reference.len()
    );

    let report = synth.evaluate(DesignStyle::MultiClock(3))?;
    let gated = synth.evaluate(DesignStyle::ConventionalGated)?;
    println!(
        "power: {:.2} mW (three clocks) vs {:.2} mW (gated baseline) — {:.0} % less",
        report.power.total_mw,
        gated.power.total_mw,
        100.0 * report.power.reduction_vs(&gated.power)
    );
    Ok(())
}
