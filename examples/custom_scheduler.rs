//! Scheduling matters: the same FIR behaviour synthesised from three
//! different schedulers (ASAP, resource-constrained list scheduling,
//! force-directed) and evaluated under the multi-clock scheme. Shows how
//! schedule shape drives partitioning quality — the degree of freedom the
//! paper leaves to "any scheduling methodology".
//!
//! Run with: `cargo run --release --example custom_scheduler`

use multiclock::dfg::{benchmarks, scheduler, Op, ResourceConstraints, Schedule};
use multiclock::rtl::export::to_vhdl;
use multiclock::{DesignStyle, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bm = benchmarks::fir8();
    let dfg = &bm.dfg;

    let asap: Schedule = scheduler::asap(dfg);
    let listed = scheduler::list_schedule(
        dfg,
        &ResourceConstraints::new()
            .with_limit(Op::Mul, 2)
            .with_limit(Op::Add, 2),
    )?;
    let forced = scheduler::force_directed(dfg, listed.length().max(asap.length()))?;

    println!("schedules for `{}`:", dfg.name());
    for (name, s) in [
        ("asap", &asap),
        ("list(2*,2+)", &listed),
        ("force-directed", &forced),
    ] {
        println!(
            "  {name:<15} length {} steps, max parallelism {}",
            s.length(),
            s.max_parallelism()
        );
    }

    println!("\ntwo-clock synthesis from each schedule:");
    for (name, s) in [
        ("asap", asap),
        ("list(2*,2+)", listed),
        ("force-directed", forced),
    ] {
        let synth = Synthesizer::new(dfg.clone(), s).with_computations(300);
        let design = synth.synthesize_verified(DesignStyle::MultiClock(2))?;
        let r = synth.evaluate(DesignStyle::MultiClock(2))?;
        println!(
            "  {name:<15} {:5.2} mW  {:8.0} λ²  ALUs {:<18} mem {}",
            r.power.total_mw,
            r.area.total_lambda2,
            r.stats.alu_summary(),
            r.stats.mem_cells
        );
        if name == "force-directed" {
            // Export the last netlist for inspection.
            let vhdl = to_vhdl(&design.datapath.netlist);
            let lines = vhdl.lines().count();
            println!("\nstructural export of the force-directed design: {lines} lines of VHDL");
        }
    }
    Ok(())
}
