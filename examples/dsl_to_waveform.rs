//! Full front-to-back flow from a text behaviour to a waveform file: parse
//! the behavioural DSL, schedule, synthesise under two clocks, verify,
//! simulate with tracing, and write a VCD anyone can open in GTKWave —
//! plus the lint report and timing sign-off a real flow would show.
//!
//! Run with: `cargo run --release --example dsl_to_waveform`

use multiclock::dfg::{parse::parse_dfg, scheduler};
use multiclock::power::timing::analyze_timing;
use multiclock::rtl::lint;
use multiclock::sim::{simulate, vcd::to_vcd, SimConfig};
use multiclock::{DesignStyle, Synthesizer};

const SOURCE: &str = "
    # complex multiply: (ar + i*ai) * (br + i*bi)
    width 8
    input ar, ai, br, bi
    re = ar*br - ai*bi
    im = ar*bi + ai*br
    output re, im
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = parse_dfg("cmul", SOURCE)?;
    println!("parsed `{}`: {} operations", dfg.name(), dfg.num_nodes());

    let schedule = scheduler::list_schedule(
        &dfg,
        &multiclock::dfg::ResourceConstraints::new().with_limit(multiclock::dfg::Op::Mul, 2),
    )?;
    let synth = Synthesizer::new(dfg, schedule).with_computations(100);
    let design = synth.synthesize_verified(DesignStyle::MultiClock(2))?;
    let nl = &design.datapath.netlist;

    // Lint and timing sign-off.
    let warnings = lint::warnings(nl);
    println!("lint: {} warnings", warnings.len());
    for w in &warnings {
        println!("  {w}");
    }
    let timing = analyze_timing(nl, synth.tech());
    println!(
        "timing: critical path {:.2} ns, fmax {:.0} MHz (target {:.0} MHz) — {}",
        timing.critical_path_ns,
        timing.fmax_mhz,
        synth.tech().clock_mhz(),
        if timing.meets_target {
            "met"
        } else {
            "VIOLATED"
        }
    );

    // Traced simulation → VCD.
    let cfg = SimConfig::new(design.mode, 6, 42).with_trace();
    let res = simulate(nl, &cfg);
    let dump = to_vcd(nl, &res)?;
    let path = std::env::temp_dir().join("cmul.vcd");
    std::fs::write(&path, &dump)?;
    println!(
        "wrote {} ({} bytes, {} signals, {} timesteps) — open in GTKWave",
        path.display(),
        dump.len(),
        nl.num_nets(),
        res.activity.steps
    );

    for (c, out) in res.outputs.iter().enumerate() {
        println!("computation {}: re={} im={}", c + 1, out["re"], out["im"]);
    }
    Ok(())
}
