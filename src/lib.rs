//! **multiclock** — multi-clock power management for RTL datapaths.
//!
//! A production-quality Rust reproduction of *"An Effective Power
//! Management Scheme for RTL Design Based on Multiple Clocks"* (DAC 1996):
//! partition a scheduled behaviour across `n` non-overlapping phase clocks
//! of frequency `f/n` so each latch-based datapath module is active only
//! in its own phase — same throughput, substantially less power.
//!
//! This crate re-exports the whole stack through [`mc_core`]; see the
//! README for the architecture and `DESIGN.md` for the paper mapping.
//!
//! ```
//! use multiclock::{DesignStyle, Synthesizer};
//! use multiclock::dfg::benchmarks;
//!
//! # fn main() -> Result<(), multiclock::SynthesisError> {
//! let synth = Synthesizer::for_benchmark(&benchmarks::facet()).with_computations(60);
//! let gated = synth.evaluate(DesignStyle::ConventionalGated)?;
//! let multi = synth.evaluate(DesignStyle::MultiClock(3))?;
//! println!(
//!     "gated {:.2} mW → 3 clocks {:.2} mW ({:.0} % less)",
//!     gated.power.total_mw,
//!     multi.power.total_mw,
//!     100.0 * multi.power.reduction_vs(&gated.power)
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mc_core::{
    experiment, flow, passes, retrofit, rewrite, CacheStats, Design, DesignStyle, Diagnostic,
    Evaluated, Flow, PassMetrics, RewriteChoice, Severity, SynthesisError, Synthesizer,
};

pub use mc_core::{alloc, clocks, dfg, power, rtl, sim, tech};

/// The in-tree deterministic PRNGs (SplitMix64, xoshiro256**).
pub use mc_prng as prng;

/// The micro-benchmark harness and its dependency-free JSON emitter.
pub use mc_bench as bench;

/// Design-space exploration: lattice enumeration, deterministic parallel
/// evaluation, Pareto frontiers.
pub use mc_explore as explore;

/// Zero-cost-when-disabled structured tracing: spans, counters, Chrome
/// `trace_event` export (`mcpm --trace` / `mcpm trace-summary`).
pub use mc_trace as trace;

/// The persistent synthesis/exploration service (`mcpm serve`): HTTP
/// endpoints, sharded on-disk result cache, request coalescing.
pub use mc_serve as serve;
