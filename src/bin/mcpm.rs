//! `mcpm` — multi-clock power management command-line tool.
//!
//! Synthesise, evaluate, profile and export the bundled benchmark
//! behaviours from the command line:
//!
//! ```text
//! mcpm list
//! mcpm eval    --benchmark hal [--computations 400] [--seed 42]
//! mcpm synth   --benchmark hal --clocks 3 [--strategy integrated]
//!              [--mem latch] [--export vhdl|dot|vcd] [--out FILE]
//! mcpm sweep   --benchmark biquad --max-clocks 6
//! mcpm profile --benchmark hal --clocks 2
//! mcpm top     --benchmark bandpass --clocks 2 [--count 10]
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::process::ExitCode;

use multiclock::alloc::Strategy;
use multiclock::dfg::benchmarks::{self, Benchmark};
use multiclock::explore::{ExploreSpace, Explorer, GatingVariant, RewriteChoice};
use multiclock::power::{per_component_power, profile::power_profile};
use multiclock::rtl::{export, PowerMode};
use multiclock::serve::api;
use multiclock::sim::{simulate, vcd, BatchBackend, SimConfig};
use multiclock::tech::MemKind;
use multiclock::trace::summary::TraceSummary;
use multiclock::{DesignStyle, Synthesizer};

/// Typed command-line failures. Every variant exits non-zero with a
/// message naming the offending token, so a misspelled or degenerate flag
/// can never silently run with defaults.
#[derive(Debug)]
enum CliError {
    /// The first token is not a known subcommand.
    UnknownCommand(String),
    /// A `--flag` the subcommand does not accept.
    UnknownFlag {
        command: String,
        flag: String,
        suggestion: Option<&'static str>,
        valid: &'static [&'static str],
    },
    /// A bare token where only `--flag [value]` pairs are allowed.
    UnexpectedArgument { command: String, token: String },
    /// A flag value that does not parse or is out of range.
    InvalidValue {
        flag: String,
        value: String,
        reason: String,
    },
    /// Any other failure (I/O, synthesis, signoff, ...).
    Other(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(cmd) => {
                write!(f, "unknown command `{cmd}`\n\n{}", usage())
            }
            CliError::UnknownFlag {
                command,
                flag,
                suggestion,
                valid,
            } => {
                write!(f, "unknown flag `--{flag}` for `{command}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `--{s}`?)")?;
                }
                if valid.is_empty() {
                    write!(f, "; `{command}` takes no flags")
                } else {
                    let list: Vec<String> = valid.iter().map(|v| format!("--{v}")).collect();
                    write!(f, "; valid flags: {}", list.join(", "))
                }
            }
            CliError::UnexpectedArgument { command, token } => {
                write!(
                    f,
                    "unexpected argument `{token}`: `{command}` takes only `--flag [value]` pairs"
                )
            }
            CliError::InvalidValue {
                flag,
                value,
                reason,
            } => {
                write!(f, "invalid value `{value}` for --{flag}: {reason}")
            }
            CliError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Other(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Other(msg.to_owned())
    }
}

/// The flags each subcommand accepts. `None` → unknown subcommand.
fn valid_flags(command: &str) -> Option<&'static [&'static str]> {
    #[rustfmt::skip]
    let flags: &'static [&'static str] = match command {
        "list" | "help" | "--help" | "-h" => &[],
        "eval" => &["benchmark", "file", "computations", "seed", "json", "out", "trace"],
        "synth" => &["benchmark", "file", "computations", "seed", "clocks", "strategy",
                     "mem", "export", "out"],
        "sweep" => &["benchmark", "file", "computations", "seed", "max-clocks", "json",
                     "out", "trace"],
        "explore" => &["benchmark", "file", "computations", "seed", "max-clocks", "budget",
                       "voltages", "stretch", "gating", "rewrites", "scenarios", "scale", "threads",
                       "parallel", "timings", "seeds", "batch", "backend", "cache-dir",
                       "checkpoint", "resume", "deadline-ms", "spill", "json", "out", "trace"],
        "profile" | "signoff" => &["benchmark", "file", "computations", "seed", "clocks",
                                   "strategy", "mem"],
        "retrofit" => &["benchmark", "file", "computations", "seed", "clocks", "seeds",
                        "parallel", "backend", "export", "json", "out", "trace"],
        "top" => &["benchmark", "file", "computations", "seed", "clocks", "strategy",
                   "mem", "count"],
        "serve" => &["addr", "cache-dir", "threads", "trace"],
        "request" => &["addr", "path", "body", "get", "out"],
        "stats" => &["benchmark", "file", "computations", "seed", "clocks", "strategy",
                     "mem", "seeds"],
        "trace-summary" => &["counters"],
        _ => return None,
    };
    Some(flags)
}

/// Levenshtein edit distance, for did-you-mean hints on misspelled flags.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest valid flag within edit distance 2, if any.
fn did_you_mean(flag: &str, valid: &'static [&'static str]) -> Option<&'static str> {
    valid
        .iter()
        .map(|v| (edit_distance(flag, v), *v))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, v)| v)
}

/// Parsed command-line options (flag → value).
struct Args {
    command: String,
    flags: BTreeMap<String, String>,
    /// Bare (non-`--flag`) tokens; only `trace-summary` accepts one.
    positional: Vec<String>,
}

impl Args {
    /// Parses the process arguments. `Ok(None)` means no command was
    /// given (print usage). Unknown commands, unknown flags and stray
    /// tokens are hard errors — never silently ignored.
    fn parse() -> Result<Option<Args>, CliError> {
        Self::parse_from(std::env::args().skip(1).collect())
    }

    fn parse_from(tokens: Vec<String>) -> Result<Option<Args>, CliError> {
        let mut it = tokens.into_iter();
        let Some(command) = it.next() else {
            return Ok(None);
        };
        let valid =
            valid_flags(&command).ok_or_else(|| CliError::UnknownCommand(command.clone()))?;
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let rest: Vec<String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let Some(key) = rest[i].strip_prefix("--") else {
                if command == "trace-summary" && positional.is_empty() {
                    positional.push(rest[i].clone());
                    i += 1;
                    continue;
                }
                return Err(CliError::UnexpectedArgument {
                    command,
                    token: rest[i].clone(),
                });
            };
            if !valid.contains(&key) {
                return Err(CliError::UnknownFlag {
                    command,
                    flag: key.to_owned(),
                    suggestion: did_you_mean(key, valid),
                    valid,
                });
            }
            // `--flag value`, or a bare boolean `--flag` (next token is
            // another flag or the end of the line).
            match rest.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(key.to_owned(), v.clone());
                    i += 2;
                }
                _ => {
                    flags.insert(key.to_owned(), "true".to_owned());
                    i += 1;
                }
            }
        }
        Ok(Some(Args {
            command,
            flags,
            positional,
        }))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Boolean flag: present (bare or `--flag true`) unless set to
    /// `false`.
    fn is_set(&self, key: &str) -> bool {
        matches!(self.get(key), Some(v) if v != "false")
    }

    /// Comma-separated list flag, e.g. `--voltages 4.65,3.3`.
    fn parse_list<T>(&self, key: &str, default: &[T]) -> Result<Vec<T>, CliError>
    where
        T: std::str::FromStr + Clone,
    {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim().parse().map_err(|_| CliError::InvalidValue {
                        flag: key.to_owned(),
                        value: s.to_owned(),
                        reason: "not a valid list element".to_owned(),
                    })
                })
                .collect(),
        }
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
                flag: key.to_owned(),
                value: v.to_owned(),
                reason: "not a number".to_owned(),
            }),
        }
    }

    /// Numeric flag with a lower bound, rejected at parse time so
    /// degenerate values (`--computations 0`, `--seeds 0`, `--batch 0`)
    /// never reach the simulator or the Monte-Carlo divisions.
    fn parse_num_at_least<T>(&self, key: &str, default: T, min: T) -> Result<T, CliError>
    where
        T: std::str::FromStr + PartialOrd + fmt::Display + Copy,
    {
        let v = self.parse_num(key, default)?;
        if v < min {
            return Err(CliError::InvalidValue {
                flag: key.to_owned(),
                value: v.to_string(),
                reason: format!("must be at least {min}"),
            });
        }
        Ok(v)
    }

    /// `--backend batched|bitsliced` (default batched). The backend
    /// never changes results, only throughput.
    fn parse_backend(&self) -> Result<BatchBackend, CliError> {
        match self.get("backend") {
            None => Ok(BatchBackend::default()),
            Some(name) => BatchBackend::from_name(name).ok_or_else(|| CliError::InvalidValue {
                flag: "backend".to_owned(),
                value: name.to_owned(),
                reason: "expected `batched` or `bitsliced`".to_owned(),
            }),
        }
    }
}

fn usage() -> &'static str {
    "mcpm — multi-clock power management for RTL datapaths\n\
     \n\
     commands:\n\
     \x20 list                                   list bundled benchmarks\n\
     \x20 eval    --benchmark NAME | --file F    evaluate the five paper design styles\n\
     \x20 synth   --benchmark NAME | --file F    synthesise one design (--clocks N)\n\
     \x20         [--strategy conventional|split|integrated] [--mem latch|dff]\n\
     \x20         [--export vhdl|mcnl|dot|vcd] [--out FILE]\n\
     \x20 sweep   --benchmark NAME [--max-clocks N]   clock-count sweep\n\
     \x20 explore --benchmark NAME | --file F    Pareto design-space exploration\n\
     \x20         [--max-clocks N] [--budget K] [--voltages V1,V2] [--stretch S1,S2]\n\
     \x20         [--gating N] [--rewrites N] [--scenarios N] [--scale] (--scale: the\n\
     \x20         full 10^5+ point lattice; --gating/--scenarios add gating variants and\n\
     \x20         stimulus seeds; --rewrites adds equivalence-checked datapath rewrites)\n\
     \x20         [--cache-dir DIR] (persistent cross-run result cache: a warm re-run\n\
     \x20         performs zero flow evaluations)\n\
     \x20         [--checkpoint FILE] [--resume] [--deadline-ms MS] [--spill FILE]\n\
     \x20         (interrupt-safe: checkpoint + resume is byte-identical to a straight\n\
     \x20         run; --spill streams dominated points to FILE as they are pruned)\n\
     \x20         [--threads T] [--parallel false] [--timings] [--out FILE]\n\
     \x20         [--seeds N] (Monte-Carlo power: mean ± 95 % CI per point)\n\
     \x20         [--batch L] (lanes of the batched kernel, default 16)\n\
     \x20         [--backend batched|bitsliced] (multi-seed kernel; results identical)\n\
     \x20 retrofit --benchmark NAME | --file F   convert a single-clock design to a\n\
     \x20         latch-based multi-phase one [--clocks N] [--seeds K] [--parallel false]\n\
     \x20         [--backend batched|bitsliced] [--export vhdl|mcnl] [--json] [--out FILE]\n\
     \x20         (--file reads exported VHDL or the mcnl format; --benchmark\n\
     \x20         round-trips through VHDL first)\n\
     \x20 serve   [--addr HOST:PORT]             run as a persistent HTTP service\n\
     \x20         [--cache-dir DIR] [--threads T]  (POST /eval /sweep /explore /retrofit,\n\
     \x20         GET /healthz /stats, POST /shutdown; responses byte-identical to the\n\
     \x20         one-shot --json output, cached on disk, identical in-flight requests\n\
     \x20         coalesced)\n\
     \x20 request [--addr HOST:PORT] --path /eval [--body JSON | --get]   tiny HTTP\n\
     \x20         client for the service (for scripts without curl)\n\
     \x20 profile --benchmark NAME --clocks N    power-over-time (folded by period)\n\
     \x20 top     --benchmark NAME --clocks N [--count K]   hottest components\n\
     \x20 stats   --benchmark NAME --clocks N [--seeds K]   power spread across seeds\n\
     \x20 signoff --benchmark NAME | --file F    equivalence + lint + discipline + timing\n\
     \x20 trace-summary FILE [--counters]        summarise a --trace file (spans,\n\
     \x20         counters, coverage); --counters emits the deterministic JSON only\n\
     \n\
     common flags: --computations N (default 400), --seed S (default 42),\n\
     \x20             --json (eval/sweep/explore emit machine-readable JSON),\n\
     \x20             --trace FILE (eval/sweep/explore write a Chrome trace_event\n\
     \x20             profile loadable in Perfetto / chrome://tracing)"
}

fn find_benchmark(name: &str) -> Result<Benchmark, CliError> {
    // The typed resolver reports *why* a name failed — unknown name,
    // malformed `random:` spec, or a degenerate node count — instead of a
    // generic miss.
    benchmarks::parse_name(name).map_err(|e| CliError::Other(e.to_string()))
}

/// Loads the behaviour: either `--benchmark NAME` (bundled, with its
/// reference schedule) or `--file PATH` (the behavioural DSL, scheduled
/// ASAP).
fn load_behavior(args: &Args) -> Result<Benchmark, CliError> {
    match (args.get("benchmark"), args.get("file")) {
        (Some(name), None) => find_benchmark(name),
        (None, Some(path)) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("user_design");
            let dfg = multiclock::dfg::parse::parse_dfg(stem, &source)
                .map_err(|e| format!("{path}: {e}"))?;
            let schedule = multiclock::dfg::scheduler::asap(&dfg);
            Ok(Benchmark {
                dfg,
                schedule,
                description: "user behaviour from file",
            })
        }
        (Some(_), Some(_)) => Err("pass either --benchmark or --file, not both".into()),
        (None, None) => Err("missing --benchmark NAME or --file PATH".into()),
    }
}

fn style_from(args: &Args) -> Result<DesignStyle, CliError> {
    let clocks: u32 = args.parse_num_at_least("clocks", 2, 1)?;
    let strategy = match args.get("strategy").unwrap_or("integrated") {
        "conventional" => Strategy::Conventional,
        "split" => Strategy::Split,
        "integrated" => Strategy::Integrated,
        other => return Err(format!("unknown strategy `{other}`").into()),
    };
    let mem_kind = match args.get("mem").unwrap_or("latch") {
        "latch" => MemKind::Latch,
        "dff" => MemKind::Dff,
        other => return Err(format!("unknown memory kind `{other}`").into()),
    };
    if strategy == Strategy::Conventional {
        return if clocks == 1 {
            Ok(DesignStyle::ConventionalGated)
        } else {
            Err("conventional strategy requires --clocks 1".into())
        };
    }
    Ok(DesignStyle::Custom {
        strategy,
        clocks,
        mem_kind,
        transfers: true,
        mode: PowerMode::multiclock(),
    })
}

/// The design reference the service API wants, from `--benchmark` /
/// `--file` (the file is read eagerly so the request is self-contained).
fn design_ref(args: &Args) -> Result<api::DesignRef, CliError> {
    match (args.get("benchmark"), args.get("file")) {
        (Some(name), None) => Ok(api::DesignRef::Benchmark(name.to_owned())),
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("user_design")
                .to_owned();
            Ok(api::DesignRef::Source { name, text })
        }
        (Some(_), Some(_)) => Err("pass either --benchmark or --file, not both".into()),
        (None, None) => Err("missing --benchmark NAME or --file PATH".into()),
    }
}

/// Parses `--gating N` — how many of the data-dependent gating variants
/// (arXiv 1806.02271) each lattice design is replicated under.
fn parse_gating_count(args: &Args) -> Result<u32, CliError> {
    let n = args.parse_num_at_least("gating", 1u32, 1)?;
    if n > GatingVariant::ALL.len() as u32 {
        return Err(format!("--gating out of range (1..={})", GatingVariant::ALL.len()).into());
    }
    Ok(n)
}

/// Parses `--rewrites N` — how many of the equivalence-checked datapath
/// rewrites each lattice design is replicated under.
fn parse_rewrites_count(args: &Args) -> Result<u32, CliError> {
    let n = args.parse_num_at_least("rewrites", 1u32, 1)?;
    if n > RewriteChoice::ALL.len() as u32 {
        return Err(format!("--rewrites out of range (1..={})", RewriteChoice::ALL.len()).into());
    }
    Ok(n)
}

/// Builds the exploration lattice from the CLI flags: `--scale` selects
/// the million-point preset, then each dimension flag that is present
/// overrides that dimension only.
fn explore_space(args: &Args) -> Result<ExploreSpace, CliError> {
    let mut space = if args.is_set("scale") {
        ExploreSpace::scale()
    } else {
        ExploreSpace::default()
    };
    if args.get("max-clocks").is_some() {
        space.n_max = args.parse_num_at_least("max-clocks", 4, 1)?;
    }
    if args.get("voltages").is_some() {
        space.voltages = args.parse_list("voltages", &[])?;
    }
    if args.get("stretch").is_some() {
        space.stretches = args.parse_list("stretch", &[])?;
    }
    if args.get("gating").is_some() {
        space.gating = GatingVariant::first_n(parse_gating_count(args)? as usize);
    }
    if args.get("rewrites").is_some() {
        space.rewrites = RewriteChoice::first_n(parse_rewrites_count(args)? as usize);
    }
    if args.get("scenarios").is_some() {
        space.scenarios = args.parse_num_at_least("scenarios", 1, 1)?;
    }
    Ok(space)
}

/// Runs one service-API request in-process and emits its JSON document —
/// the single code path shared with `mcpm serve`, which is what makes
/// server responses byte-identical to the CLI `--json` output.
fn emit_api_json(args: &Args, request: &api::ApiRequest) -> Result<(), CliError> {
    let json = request
        .run_json(&api::FlowPool::new())
        .map_err(CliError::Other)?;
    emit(args, &json)
}

fn emit(args: &Args, text: &str) -> Result<(), CliError> {
    match args.get("out") {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| CliError::Other(format!("cannot write `{path}`: {e}")))
            .map(|()| println!("wrote {path} ({} bytes)", text.len())),
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn run() -> Result<(), CliError> {
    let Some(args) = Args::parse()? else {
        println!("{}", usage());
        return Ok(());
    };
    // `--trace FILE`: record the whole command under a root span and
    // write a Chrome trace_event profile on success.
    let trace_out = args.get("trace").map(str::to_owned);
    if trace_out.is_some() {
        multiclock::trace::enable();
    }
    let result = {
        let _root = multiclock::trace::span(format!("mcpm.{}", args.command));
        dispatch(&args)
    };
    if let Some(path) = trace_out {
        let trace = multiclock::trace::take();
        multiclock::trace::disable();
        if result.is_ok() {
            std::fs::write(&path, trace.to_chrome_json())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("trace written to {path} (load in Perfetto / chrome://tracing)");
        }
    }
    result
}

fn dispatch(args: &Args) -> Result<(), CliError> {
    let computations: usize = args.parse_num_at_least("computations", 400, 1)?;
    let seed: u64 = args.parse_num("seed", 42)?;

    match args.command.as_str() {
        "list" => {
            for bm in benchmarks::all_benchmarks() {
                println!(
                    "{:<11} {:>3} ops, {:>2} steps — {}",
                    bm.name(),
                    bm.dfg.num_nodes(),
                    bm.schedule.length(),
                    bm.description
                );
            }
            Ok(())
        }
        "eval" => {
            if args.is_set("json") {
                return emit_api_json(
                    args,
                    &api::ApiRequest::Eval(api::EvalRequest {
                        design: design_ref(args)?,
                        computations,
                        seed,
                    }),
                );
            }
            let bm = load_behavior(args)?;
            // Rows run concurrently through the pass pipeline; results
            // are bit-identical to the sequential path.
            let table = multiclock::experiment::paper_table_parallel(&bm, computations, seed)
                .map_err(|e| e.to_string())?;
            println!("{}", table.render());
            if let Some(red) = table.gated_to_best_multiclock_reduction() {
                println!("gated → best multiclock reduction: {:.1} %", red * 100.0);
            }
            println!();
            print!("{}", table.render_timings());
            for d in table
                .diagnostics
                .iter()
                .filter(|d| d.severity == multiclock::Severity::Warning)
            {
                eprintln!("{d}");
            }
            Ok(())
        }
        "synth" => {
            let bm = load_behavior(args)?;
            let style = style_from(args)?;
            let synth = Synthesizer::for_benchmark(&bm)
                .with_computations(computations)
                .with_seed(seed);
            let design = synth
                .synthesize_verified(style)
                .map_err(|e| e.to_string())?;
            let nl = &design.datapath.netlist;
            match args.get("export") {
                None => emit(args, &nl.to_string())?,
                Some("vhdl") => emit(args, &export::to_vhdl(nl))?,
                Some("mcnl") => emit(args, &export::to_mcnl(nl))?,
                Some("dot") => emit(args, &export::to_dot(nl))?,
                Some("vcd") => {
                    let cfg = SimConfig::new(design.mode, computations.min(20), seed).with_trace();
                    let res = simulate(nl, &cfg);
                    let dump = vcd::to_vcd(nl, &res).map_err(|e| e.to_string())?;
                    emit(args, &dump)?;
                }
                Some(other) => return Err(format!("unknown export format `{other}`").into()),
            }
            let stats = nl.stats();
            eprintln!(
                "verified OK — ALUs {}, mem cells {}, mux inputs {}",
                stats.alu_summary(),
                stats.mem_cells,
                stats.mux_inputs
            );
            Ok(())
        }
        "sweep" => {
            let max: u32 = args.parse_num_at_least("max-clocks", 6, 1)?;
            if args.is_set("json") {
                return emit_api_json(
                    args,
                    &api::ApiRequest::Sweep(api::SweepRequest {
                        design: design_ref(args)?,
                        max_clocks: max,
                        computations,
                        seed,
                    }),
                );
            }
            let bm = load_behavior(args)?;
            let sweep = multiclock::experiment::clock_sweep_parallel(&bm, max, computations, seed)
                .map_err(|e| e.to_string())?;
            println!(
                "{:>3} {:>9} {:>12} {:>6} {:>6}",
                "n", "mW", "λ²", "mem", "muxin"
            );
            for (n, rep) in sweep {
                println!(
                    "{n:>3} {:>9.2} {:>12.0} {:>6} {:>6}",
                    rep.power.total_mw,
                    rep.area.total_lambda2,
                    rep.stats.mem_cells,
                    rep.stats.mux_inputs
                );
            }
            Ok(())
        }
        "explore" => {
            // Persistence and preset flags (cache, checkpoint/resume,
            // deadline, spill, the --scale preset) run locally; plain
            // `--json` runs go through the service API whose response
            // cache is a byte-identity contract with the local engine.
            let local_only = args.is_set("scale")
                || args.is_set("resume")
                || ["cache-dir", "checkpoint", "deadline-ms", "spill"]
                    .iter()
                    .any(|f| args.get(f).is_some());
            if args.is_set("json") && !args.is_set("timings") && !local_only {
                let budget = match args.get("budget") {
                    Some(_) => Some(args.parse_num_at_least("budget", 1, 1)?),
                    None => None,
                };
                let threads = match args.get("threads") {
                    Some(_) => Some(args.parse_num_at_least("threads", 1, 1)?),
                    None => None,
                };
                return emit_api_json(
                    args,
                    &api::ApiRequest::Explore(api::ExploreRequest {
                        design: design_ref(args)?,
                        max_clocks: args.parse_num_at_least("max-clocks", 4, 1)?,
                        voltages: args
                            .parse_list("voltages", &[multiclock::explore::NOMINAL_VOLTS, 3.3])?,
                        stretches: args.parse_list("stretch", &[2u32])?,
                        gating: parse_gating_count(args)?,
                        rewrites: parse_rewrites_count(args)?,
                        scenarios: args.parse_num_at_least("scenarios", 1, 1)?,
                        budget,
                        power_seeds: args.parse_num_at_least("seeds", 1, 1)?,
                        batch: args.parse_num_at_least(
                            "batch",
                            multiclock::Flow::DEFAULT_BATCH,
                            1,
                        )?,
                        computations,
                        seed,
                        parallel: !matches!(args.get("parallel"), Some("false")),
                        threads,
                        backend: args.parse_backend()?,
                    }),
                );
            }
            let bm = load_behavior(args)?;
            let mut explorer = Explorer::new()
                .with_space(explore_space(args)?)
                .with_computations(computations)
                .with_seed(seed)
                .with_power_seeds(args.parse_num_at_least("seeds", 1, 1)?)
                .with_batch(args.parse_num_at_least("batch", multiclock::Flow::DEFAULT_BATCH, 1)?)
                .with_batch_backend(args.parse_backend()?)
                .with_parallel(!matches!(args.get("parallel"), Some("false")));
            if args.get("budget").is_some() {
                explorer = explorer.with_budget(args.parse_num_at_least("budget", 1, 1)?);
            }
            if args.get("threads").is_some() {
                explorer = explorer.with_threads(args.parse_num_at_least("threads", 1, 1)?);
            }
            if let Some(dir) = args.get("cache-dir") {
                explorer = explorer.with_cache_dir(dir);
            }
            if let Some(path) = args.get("checkpoint") {
                explorer = explorer.with_checkpoint(path);
            }
            if args.is_set("resume") {
                if args.get("checkpoint").is_none() {
                    return Err("--resume requires --checkpoint FILE".into());
                }
                explorer = explorer.with_resume(true);
            }
            if args.get("deadline-ms").is_some() {
                explorer = explorer.with_deadline_ms(args.parse_num("deadline-ms", 0u64)?);
            }
            if let Some(path) = args.get("spill") {
                explorer = explorer.with_spill(path);
            }
            let report = explorer.run(&bm).map_err(|e| e.to_string())?;
            if args.is_set("json") {
                // The local deterministic document is byte-identical to
                // the service's; `--timings` adds the wall-clock and
                // cache fields the byte-identity contract leaves out.
                return if args.is_set("timings") {
                    emit(args, &report.to_json_with_timings())
                } else {
                    emit(args, &report.to_json())
                };
            }
            let mut text = report.render_ranked();
            if args.is_set("timings") {
                text.push('\n');
                text.push_str(&report.render_timings());
            }
            emit(args, &text)
        }
        "retrofit" => {
            use std::fmt::Write as _;
            let clocks: u32 = args.parse_num_at_least("clocks", 3, 2)?;
            let nseeds: usize = args.parse_num_at_least("seeds", 5, 1)?;
            if args.is_set("json") && args.get("export").is_none() {
                return emit_api_json(
                    args,
                    &api::ApiRequest::Retrofit(api::RetrofitRequest {
                        design: design_ref(args)?,
                        clocks,
                        seeds: nseeds,
                        computations,
                        seed,
                        parallel: !matches!(args.get("parallel"), Some("false")),
                        backend: args.parse_backend()?,
                    }),
                );
            }
            let r = match (args.get("benchmark"), args.get("file")) {
                (Some(name), None) => {
                    // Round-trip through the VHDL exporter so the bundled
                    // benchmarks exercise the same importer a real design
                    // file would.
                    let bm = find_benchmark(name)?;
                    let nl = Synthesizer::for_benchmark(&bm)
                        .synthesize(DesignStyle::ConventionalNonGated)
                        .map_err(|e| e.to_string())?
                        .datapath
                        .netlist;
                    multiclock::retrofit::retrofit_source(&export::to_vhdl(&nl), clocks)
                }
                (None, Some(path)) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                    multiclock::retrofit::retrofit_source(&text, clocks)
                }
                (Some(_), Some(_)) => {
                    return Err("pass either --benchmark or --file, not both".into())
                }
                (None, None) => return Err("missing --benchmark NAME or --file PATH".into()),
            }
            .map_err(|e| e.to_string())?;
            let opts = multiclock::retrofit::RetrofitOptions {
                computations,
                seeds: multiclock::power::derive_seeds(seed, nseeds),
                parallel: !matches!(args.get("parallel"), Some("false")),
                backend: args.parse_backend()?,
                ..Default::default()
            };
            let report =
                multiclock::retrofit::verify_retrofit(&r, &opts).map_err(|e| e.to_string())?;
            if let Some(format) = args.get("export") {
                let text = match format {
                    "vhdl" => export::to_vhdl(&r.converted),
                    "mcnl" => export::to_mcnl(&r.converted),
                    other => return Err(format!("unknown export format `{other}`").into()),
                };
                emit(args, &text)?;
                eprintln!(
                    "retrofit verified — `{}` → {clocks} phases, {:.1} % power reduction",
                    r.original.name(),
                    report.power_reduction_pct
                );
                return Ok(());
            }
            let mut text = String::new();
            let _ = writeln!(
                text,
                "retrofit of `{}`: 1 clock → {clocks} non-overlapping phases",
                r.original.name()
            );
            let regs: Vec<String> = report
                .phase_histogram
                .iter()
                .enumerate()
                .map(|(i, c)| format!("CLK{} ×{c}", i + 1))
                .collect();
            let _ = writeln!(
                text,
                "  registers per phase: {}  ({} shadow latch{} added)",
                regs.join(", "),
                report.shadows,
                if report.shadows == 1 { "" } else { "es" }
            );
            let _ = writeln!(
                text,
                "  latency: {}× control steps per computation (each phase runs at f/{clocks})",
                report.latency_factor
            );
            let _ = writeln!(
                text,
                "  power: {:.3} mW → {:.3} mW  ({:.1} % reduction)",
                report.original.power.total_mw,
                report.converted.power.total_mw,
                report.power_reduction_pct
            );
            let _ = writeln!(
                text,
                "  equivalence: bit-identical outputs over {} seed{} × {} computations",
                report.seeds,
                if report.seeds == 1 { "" } else { "s" },
                report.computations
            );
            emit(args, text.trim_end())
        }
        "profile" => {
            let bm = load_behavior(args)?;
            let style = style_from(args)?;
            let synth = Synthesizer::for_benchmark(&bm).with_seed(seed);
            let design = synth.synthesize(style).map_err(|e| e.to_string())?;
            let cfg = SimConfig::new(design.mode, computations, seed).with_profile();
            let res = simulate(&design.datapath.netlist, &cfg);
            let prof = power_profile(&design.datapath.netlist, &res.activity, synth.tech())
                .map_err(|e| e.to_string())?;
            println!(
                "power profile of `{}` (avg {:.2} mW, peak {:.2} mW):",
                design.datapath.netlist.name(),
                prof.average_mw(),
                prof.peak_mw()
            );
            print!("{}", prof.render_folded());
            Ok(())
        }
        "top" => {
            let bm = load_behavior(args)?;
            let style = style_from(args)?;
            let count: usize = args.parse_num_at_least("count", 10, 1)?;
            let synth = Synthesizer::for_benchmark(&bm).with_seed(seed);
            let design = synth.synthesize(style).map_err(|e| e.to_string())?;
            let cfg = SimConfig::new(design.mode, computations, seed);
            let res = simulate(&design.datapath.netlist, &cfg);
            let ranked = per_component_power(&design.datapath.netlist, &res.activity, synth.tech());
            println!(
                "top {count} power consumers of `{}`:",
                design.datapath.netlist.name()
            );
            for cp in ranked.into_iter().take(count) {
                println!("  {:<28} {:>8.3} mW", cp.label, cp.mw);
            }
            Ok(())
        }
        "signoff" => {
            let bm = load_behavior(args)?;
            let style = style_from(args)?;
            let synth = Synthesizer::for_benchmark(&bm)
                .with_computations(computations)
                .with_seed(seed);
            let design = synth
                .synthesize_verified(style)
                .map_err(|e| e.to_string())?;
            let nl = &design.datapath.netlist;
            println!("signoff report for `{}`", nl.name());

            println!("\n[1/4] functional equivalence: PASS ({computations} random vectors)");

            let warnings = multiclock::rtl::lint::warnings(nl);
            println!("\n[2/4] lint: {} warning(s)", warnings.len());
            for w in &warnings {
                println!("      {w}");
            }

            let hazards = multiclock::rtl::discipline::check_latch_discipline(nl, false);
            println!(
                "\n[3/4] latch discipline (non-overlapping READ/WRITE): {}",
                if hazards.is_empty() { "PASS" } else { "FAIL" }
            );
            for h in &hazards {
                println!("      {h}");
            }

            let timing = multiclock::power::timing::analyze_timing(nl, synth.tech());
            println!(
                "\n[4/4] timing: critical path {:.2} ns, fmax {:.0} MHz, target {:.0} MHz — {}",
                timing.critical_path_ns,
                timing.fmax_mhz,
                synth.tech().clock_mhz(),
                if timing.meets_target {
                    "MET"
                } else {
                    "VIOLATED"
                }
            );

            // Per-DPM power split.
            let cfg = SimConfig::new(design.mode, computations, seed);
            let res = simulate(nl, &cfg);
            println!("\nper-partition power (attributable):");
            for (phase, mw) in multiclock::power::per_dpm_power(nl, &res.activity, synth.tech()) {
                println!("  DPM({phase}): {mw:.3} mW");
            }
            if !warnings.is_empty() || !hazards.is_empty() || !timing.meets_target {
                return Err("signoff found issues (see above)".into());
            }
            println!("\nsignoff CLEAN");
            Ok(())
        }
        "stats" => {
            let bm = load_behavior(args)?;
            let style = style_from(args)?;
            let seeds: usize = args.parse_num_at_least("seeds", 5, 1)?;
            let stats = multiclock::experiment::power_stats(&bm, style, computations, seeds)
                .map_err(|e| e.to_string())?;
            println!(
                "{} over {} seeds × {computations} computations:",
                style.label(),
                stats.seeds
            );
            println!(
                "  power {:.3} ± {:.3} mW  (min {:.3}, max {:.3})",
                stats.mean_mw, stats.std_mw, stats.min_mw, stats.max_mw
            );
            Ok(())
        }
        "serve" => {
            use std::io::Write as _;
            let defaults = multiclock::serve::ServeConfig::default();
            let config = multiclock::serve::ServeConfig {
                addr: args.get("addr").map_or(defaults.addr, str::to_owned),
                cache_dir: args.get("cache-dir").map_or(defaults.cache_dir, Into::into),
                threads: args.parse_num_at_least("threads", defaults.threads, 1)?,
            };
            let server = multiclock::serve::Server::bind(&config).map_err(|e| e.to_string())?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            println!(
                "mcpm serve listening on http://{addr} (cache: {}, {} worker{})",
                config.cache_dir.display(),
                config.threads,
                if config.threads == 1 { "" } else { "s" }
            );
            // Piped stdout is block-buffered; scripts parse the line
            // above to learn an ephemeral port, so push it out before
            // blocking in accept.
            let _ = std::io::stdout().flush();
            server.run().map_err(|e| e.to_string())?;
            // The supervisor may have closed our stdout by now (it only
            // needed the banner); a farewell line is not worth a panic.
            let _ = writeln!(
                std::io::stdout(),
                "mcpm serve: drained in-flight work, stopped"
            );
            Ok(())
        }
        "request" => {
            let defaults = multiclock::serve::ServeConfig::default();
            let addr = args.get("addr").unwrap_or(&defaults.addr);
            let path = args
                .get("path")
                .ok_or("missing --path (e.g. --path /healthz)")?;
            let (method, body) = if args.is_set("get") {
                ("GET", "")
            } else {
                ("POST", args.get("body").unwrap_or(""))
            };
            let (status, body) = multiclock::serve::http::http_request(addr, method, path, body)
                .map_err(|e| format!("request to `{addr}` failed: {e}"))?;
            if status >= 400 {
                return Err(format!("server answered HTTP {status}: {}", body.trim_end()).into());
            }
            match args.get("out") {
                // Verbatim: the body already carries the CLI's trailing
                // newline, keeping `--out` files diffable against
                // redirected one-shot `--json` output.
                Some(out) => {
                    std::fs::write(out, &body).map_err(|e| format!("cannot write `{out}`: {e}"))?
                }
                None => print!("{body}"),
            }
            Ok(())
        }
        "trace-summary" => {
            let path = args
                .positional
                .first()
                .ok_or("usage: mcpm trace-summary FILE [--counters]")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let summary = TraceSummary::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            if args.is_set("counters") {
                print!("{}", summary.deterministic_json());
            } else {
                print!("{}", summary.render());
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        // `Args::parse` rejects unknown commands before dispatch.
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
