#!/usr/bin/env bash
# Full offline quality gate: formatting, lints, release build, tests.
# Everything runs without network access — the workspace has no external
# dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release --workspace
run cargo test -q --workspace

# Bench smoke: times the compiled kernel against the interpreter on the
# paper-table workloads and emits BENCH_sim.json. The bench asserts the
# backends are bit-identical before timing, so divergence fails the gate.
MC_BENCH_ITERS=2 run scripts/bench.sh

echo "==> ci.sh: all checks passed"
