#!/usr/bin/env bash
# Full offline quality gate: formatting, lints, release build, tests.
# Everything runs without network access — the workspace has no external
# dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace
run cargo build --release --workspace
run cargo test -q --workspace

# Bench smoke: times the compiled kernel against the interpreter
# (BENCH_sim.json), the batched multi-lane kernel against the looped
# scalar kernel (BENCH_batch.json), and the bit-sliced kernel against
# the batched one (BENCH_bitslice.json). Every bench asserts
# bit-identity before timing — backend, lane or seed divergence fails
# the gate here, not just in the nightly full run.
MC_BENCH_ITERS=2 run scripts/bench.sh

# Explorer determinism smoke: a tiny-budget exploration of two benchmarks
# must emit bit-identical JSON on a repeated run and with the thread pool
# disabled. Any diff means scheduling leaked into the numbers — fail.
explore_smoke() {
    local bench="$1" dir="$2"
    echo "==> explorer determinism smoke: $bench"
    ./target/release/mcpm explore --benchmark "$bench" --computations 40 \
        --budget 8 --json --out "$dir/$bench.a.json" > /dev/null
    ./target/release/mcpm explore --benchmark "$bench" --computations 40 \
        --budget 8 --json --out "$dir/$bench.b.json" > /dev/null
    ./target/release/mcpm explore --benchmark "$bench" --computations 40 \
        --budget 8 --json --parallel false --out "$dir/$bench.seq.json" > /dev/null
    cmp "$dir/$bench.a.json" "$dir/$bench.b.json" \
        || { echo "ci.sh: $bench explorer JSON differs between runs" >&2; exit 1; }
    cmp "$dir/$bench.a.json" "$dir/$bench.seq.json" \
        || { echo "ci.sh: $bench explorer JSON differs parallel vs sequential" >&2; exit 1; }
}
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
explore_smoke facet "$SMOKE_DIR"
explore_smoke hal "$SMOKE_DIR"

# Explorer scale smoke: interrupt a budget run via checkpoint, resume it,
# and byte-compare the resumed JSON against a straight-through run of the
# same budget. A diff means the checkpoint lost or reordered state. The
# warm re-run against the same cache directory must also be identical.
echo "==> explorer scale smoke: checkpoint/resume + cross-run cache"
./target/release/mcpm explore --benchmark hal --computations 40 --budget 12 \
    --scenarios 2 --cache-dir "$SMOKE_DIR/xcache" --json \
    --out "$SMOKE_DIR/straight.json" > /dev/null
./target/release/mcpm explore --benchmark hal --computations 40 --budget 6 \
    --scenarios 2 --checkpoint "$SMOKE_DIR/x.ckpt" --json \
    --out "$SMOKE_DIR/interrupted.json" > /dev/null
./target/release/mcpm explore --benchmark hal --computations 40 --budget 12 \
    --scenarios 2 --checkpoint "$SMOKE_DIR/x.ckpt" --resume --json \
    --out "$SMOKE_DIR/resumed.json" > /dev/null
cmp "$SMOKE_DIR/straight.json" "$SMOKE_DIR/resumed.json" \
    || { echo "ci.sh: resumed explorer JSON differs from straight run" >&2; exit 1; }
./target/release/mcpm explore --benchmark hal --computations 40 --budget 12 \
    --scenarios 2 --cache-dir "$SMOKE_DIR/xcache" --json \
    --out "$SMOKE_DIR/warm.json" > /dev/null
cmp "$SMOKE_DIR/straight.json" "$SMOKE_DIR/warm.json" \
    || { echo "ci.sh: warm explorer JSON differs from cold run" >&2; exit 1; }

# Rewrite smoke: the equivalence-checked datapath rewrite axis must keep
# the explorer deterministic — two runs and parallel vs sequential emit
# byte-identical JSON — and must actually evaluate at least one
# equivalence-verified rewritten variant: the frontier carries a
# rewritten row and the deterministic trace counters record a non-zero
# `rewrite.verified`.
echo "==> rewrite smoke: determinism + equivalence-verified variants"
./target/release/mcpm explore --benchmark hal --computations 40 --rewrites 4 \
    --json --trace "$SMOKE_DIR/rw.trace.json" --out "$SMOKE_DIR/rw.a.json" > /dev/null
./target/release/mcpm explore --benchmark hal --computations 40 --rewrites 4 \
    --json --out "$SMOKE_DIR/rw.b.json" > /dev/null
./target/release/mcpm explore --benchmark hal --computations 40 --rewrites 4 \
    --json --parallel false --out "$SMOKE_DIR/rw.seq.json" > /dev/null
cmp "$SMOKE_DIR/rw.a.json" "$SMOKE_DIR/rw.b.json" \
    || { echo "ci.sh: --rewrites explorer JSON differs between runs" >&2; exit 1; }
cmp "$SMOKE_DIR/rw.a.json" "$SMOKE_DIR/rw.seq.json" \
    || { echo "ci.sh: --rewrites explorer JSON differs parallel vs sequential" >&2; exit 1; }
grep -q '"rewrite":"commute"' "$SMOKE_DIR/rw.a.json" \
    || { echo "ci.sh: no rewritten variant reached the --rewrites frontier" >&2; exit 1; }
./target/release/mcpm trace-summary "$SMOKE_DIR/rw.trace.json" --counters \
    > "$SMOKE_DIR/rw.counters"
grep -q '"rewrite.verified":[1-9]' "$SMOKE_DIR/rw.counters" \
    || { echo "ci.sh: trace counters record no equivalence-verified rewrite" >&2; exit 1; }

# Retrofit smoke: export a benchmark, re-import it through the VHDL
# round trip, convert it to the latch-based multi-phase form, and verify
# (bit-identical outputs + power reduction happen inside the command).
# The deterministic JSON report must be bit-identical across two runs
# and with parallel seed verification disabled.
echo "==> retrofit smoke: round trip + conversion determinism"
./target/release/mcpm retrofit --benchmark biquad --computations 40 --seeds 2 \
    --json --out "$SMOKE_DIR/retro.a.json" > /dev/null
./target/release/mcpm retrofit --benchmark biquad --computations 40 --seeds 2 \
    --json --out "$SMOKE_DIR/retro.b.json" > /dev/null
./target/release/mcpm retrofit --benchmark biquad --computations 40 --seeds 2 \
    --json --parallel false --out "$SMOKE_DIR/retro.seq.json" > /dev/null
cmp "$SMOKE_DIR/retro.a.json" "$SMOKE_DIR/retro.b.json" \
    || { echo "ci.sh: retrofit JSON differs between runs" >&2; exit 1; }
cmp "$SMOKE_DIR/retro.a.json" "$SMOKE_DIR/retro.seq.json" \
    || { echo "ci.sh: retrofit JSON differs parallel vs sequential" >&2; exit 1; }
# The flat .mcnl export must also survive a file-based round trip.
./target/release/mcpm synth --benchmark facet --clocks 1 --strategy conventional \
    --export mcnl --out "$SMOKE_DIR/facet.mcnl" 2> /dev/null > /dev/null
./target/release/mcpm retrofit --file "$SMOKE_DIR/facet.mcnl" --clocks 2 \
    --computations 40 --seeds 2 > /dev/null \
    || { echo "ci.sh: retrofit of exported .mcnl failed" >&2; exit 1; }

# Bit-sliced backend smoke: the multi-seed commands must emit
# byte-identical JSON whichever batch backend runs them — the backend
# changes throughput, never numbers. Exercised through the two
# multi-seed flows (exploration pricing and retrofit verification).
echo "==> bit-sliced backend smoke: batched vs bitsliced JSON"
./target/release/mcpm explore --benchmark facet --computations 40 --budget 8 \
    --seeds 3 --backend batched --json --out "$SMOKE_DIR/facet.bat.json" > /dev/null
./target/release/mcpm explore --benchmark facet --computations 40 --budget 8 \
    --seeds 3 --backend bitsliced --json --out "$SMOKE_DIR/facet.bs.json" > /dev/null
cmp "$SMOKE_DIR/facet.bat.json" "$SMOKE_DIR/facet.bs.json" \
    || { echo "ci.sh: explore JSON differs between batch backends" >&2; exit 1; }
./target/release/mcpm retrofit --benchmark biquad --computations 40 --seeds 2 \
    --backend bitsliced --json --out "$SMOKE_DIR/retro.bs.json" > /dev/null
cmp "$SMOKE_DIR/retro.a.json" "$SMOKE_DIR/retro.bs.json" \
    || { echo "ci.sh: retrofit JSON differs between batch backends" >&2; exit 1; }

# Trace smoke: --trace must produce a file that validates against the
# Chrome trace_event schema (trace-summary parses and checks every
# event), and the deterministic counter export must be bit-identical
# across two runs — scheduling may move work between threads but never
# change what gets computed.
echo "==> trace smoke: schema + counter determinism"
./target/release/mcpm eval --benchmark hal --computations 40 \
    --trace "$SMOKE_DIR/t1.json" > /dev/null
./target/release/mcpm eval --benchmark hal --computations 40 \
    --trace "$SMOKE_DIR/t2.json" > /dev/null
./target/release/mcpm trace-summary "$SMOKE_DIR/t1.json" > /dev/null \
    || { echo "ci.sh: trace file failed schema validation" >&2; exit 1; }
./target/release/mcpm trace-summary "$SMOKE_DIR/t1.json" --counters \
    > "$SMOKE_DIR/t1.counters"
./target/release/mcpm trace-summary "$SMOKE_DIR/t2.json" --counters \
    > "$SMOKE_DIR/t2.counters"
cmp "$SMOKE_DIR/t1.counters" "$SMOKE_DIR/t2.counters" \
    || { echo "ci.sh: trace counters differ between runs" >&2; exit 1; }

# Serve smoke: boot the persistent service on an ephemeral port, check
# health over raw TCP, diff one served /eval byte for byte against the
# one-shot CLI's --json output (captured via redirection — stdout and
# the HTTP body are the same bytes), then drain it gracefully.
echo "==> serve smoke: health + byte-identity + graceful shutdown"
./target/release/mcpm serve --addr 127.0.0.1:0 \
    --cache-dir "$SMOKE_DIR/serve-cache" > "$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2> /dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
for _ in $(seq 50); do
    grep -q "listening on" "$SMOKE_DIR/serve.log" && break
    sleep 0.1
done
SERVE_ADDR="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$SMOKE_DIR/serve.log")"
test -n "$SERVE_ADDR" \
    || { echo "ci.sh: mcpm serve never announced its address" >&2; exit 1; }
./target/release/mcpm request --addr "$SERVE_ADDR" --get --path /healthz > /dev/null
./target/release/mcpm request --addr "$SERVE_ADDR" --path /eval \
    --body '{"benchmark":"facet","computations":40}' > "$SMOKE_DIR/eval.served.json"
./target/release/mcpm eval --benchmark facet --computations 40 --json \
    > "$SMOKE_DIR/eval.cli.json"
cmp "$SMOKE_DIR/eval.served.json" "$SMOKE_DIR/eval.cli.json" \
    || { echo "ci.sh: served /eval differs from CLI --json output" >&2; exit 1; }
./target/release/mcpm request --addr "$SERVE_ADDR" --path /shutdown > /dev/null
wait "$SERVE_PID" \
    || { echo "ci.sh: mcpm serve exited non-zero after shutdown" >&2; exit 1; }
trap 'rm -rf "$SMOKE_DIR"' EXIT

echo "==> ci.sh: all checks passed"
