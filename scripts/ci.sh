#!/usr/bin/env bash
# Full offline quality gate: formatting, lints, release build, tests.
# Everything runs without network access — the workspace has no external
# dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release --workspace
run cargo test -q --workspace

echo "==> ci.sh: all checks passed"
