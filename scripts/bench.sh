#!/usr/bin/env bash
# Simulator benchmark trajectory: runs the compiled-kernel vs interpreter
# microbenchmarks and writes BENCH_sim.json at the repo root.
#
# The bench itself asserts the two backends are bit-identical on every
# workload before timing, so a divergence fails this script (and the CI
# smoke stage that invokes it with MC_BENCH_ITERS=2).
#
# Usage:
#   scripts/bench.sh                 # full run (MC_BENCH_ITERS or 10 iters)
#   MC_BENCH_ITERS=2 scripts/bench.sh  # quick smoke run
set -euo pipefail

cd "$(dirname "$0")/.."

export MC_BENCH_OUT="${MC_BENCH_OUT:-$(pwd)/BENCH_sim.json}"

echo "==> cargo bench -p mc-bench --bench sim_kernel (out: $MC_BENCH_OUT)"
cargo bench -p mc-bench --bench sim_kernel

test -s "$MC_BENCH_OUT" || { echo "bench.sh: $MC_BENCH_OUT missing or empty" >&2; exit 1; }
echo "==> bench.sh: wrote $MC_BENCH_OUT"

# Batched multi-lane kernel: aggregate multi-seed throughput against the
# same seeds looped through the scalar compiled kernel, with lane-by-lane
# bit-identity asserted before timing. Both sides of the comparison are
# built with native CPU features — the batched kernel's lane loops
# vectorize (AVX popcount in particular), and sharing the flags keeps the
# ratio honest. A separate target dir keeps the default-flags build cache
# warm for the other stages.
BATCH_OUT="${MC_BATCH_OUT:-$(pwd)/BENCH_batch.json}"
echo "==> cargo bench -p mc-bench --bench sim_batched (out: $BATCH_OUT)"
MC_BATCH_OUT="$BATCH_OUT" \
    RUSTFLAGS="${MC_BATCH_RUSTFLAGS:--C target-cpu=native}" \
    CARGO_TARGET_DIR=target/native \
    cargo bench -p mc-bench --bench sim_batched

test -s "$BATCH_OUT" || { echo "bench.sh: $BATCH_OUT missing or empty" >&2; exit 1; }
echo "==> bench.sh: wrote $BATCH_OUT"

# Bit-sliced kernel: 64 seeds per machine word (one u64 plane per net
# bit) against the 16-lane batched kernel over the same 64-seed
# schedule, with seed-by-seed bit-identity to the scalar kernel asserted
# before timing. Same native-CPU-flags / separate-target-dir discipline
# as the batched stage — both sides of the ratio share the flags.
BITSLICE_OUT="${MC_BITSLICE_OUT:-$(pwd)/BENCH_bitslice.json}"
echo "==> cargo bench -p mc-bench --bench sim_bitsliced (out: $BITSLICE_OUT)"
MC_BITSLICE_OUT="$BITSLICE_OUT" \
    RUSTFLAGS="${MC_BATCH_RUSTFLAGS:--C target-cpu=native}" \
    CARGO_TARGET_DIR=target/native \
    cargo bench -p mc-bench --bench sim_bitsliced

test -s "$BITSLICE_OUT" || { echo "bench.sh: $BITSLICE_OUT missing or empty" >&2; exit 1; }
echo "==> bench.sh: wrote $BITSLICE_OUT"

# Explorer artifact: Pareto exploration of two paper benchmarks with
# per-point wall-clock and cache counters, via the mcpm CLI. Iteration
# count maps to the simulation depth so the CI smoke run stays quick.
EXPLORE_OUT="${MC_EXPLORE_OUT:-$(pwd)/BENCH_explore.json}"
COMPUTATIONS=$(( ${MC_BENCH_ITERS:-10} * 30 ))

echo "==> mcpm explore (facet, hal) → $EXPLORE_OUT"
cargo build --release -q --bin mcpm
{
    printf '{"explore":['
    ./target/release/mcpm explore --benchmark facet \
        --computations "$COMPUTATIONS" --json --timings
    printf ','
    ./target/release/mcpm explore --benchmark hal \
        --computations "$COMPUTATIONS" --json --timings
    printf ']}'
} > "$EXPLORE_OUT"

test -s "$EXPLORE_OUT" || { echo "bench.sh: $EXPLORE_OUT missing or empty" >&2; exit 1; }
echo "==> bench.sh: wrote $EXPLORE_OUT"

# Explorer at scale: stream the 10^5+-point --scale lattice through the
# incremental engine, cold then warm against a persistent cache, with an
# interrupt/resume pass. The bench asserts (before timing) that the warm
# run performs zero flow evaluations, that cold/warm/resumed JSON are
# byte-identical, and that the frontier keeps the paper's best
# multi-clock row. MC_BENCH_ITERS scales the point budget, so the CI
# smoke run covers a 24k-point slice and the full run the whole lattice.
EXPLORE_SCALE_OUT="${MC_EXPLORE_SCALE_OUT:-$(pwd)/BENCH_explore_scale.json}"
echo "==> cargo bench -p mc-explore --bench explore_scale (out: $EXPLORE_SCALE_OUT)"
MC_EXPLORE_SCALE_OUT="$EXPLORE_SCALE_OUT" \
    cargo bench -p mc-explore --bench explore_scale

test -s "$EXPLORE_SCALE_OUT" || { echo "bench.sh: $EXPLORE_SCALE_OUT missing or empty" >&2; exit 1; }
echo "==> bench.sh: wrote $EXPLORE_SCALE_OUT"

# Service layer: cold (fresh cache key, full pipeline per request) vs
# warm (identical request answered off the sharded disk cache) latency
# over real TCP, plus coalesced throughput (concurrent duplicates of an
# unseen key sharing one pipeline run). The bench itself asserts the
# warm path is >=5x faster and replays byte-identical responses before
# any number is written.
SERVE_OUT="${MC_SERVE_OUT:-$(pwd)/BENCH_serve.json}"
echo "==> cargo bench -p mc-serve --bench serve_latency (out: $SERVE_OUT)"
MC_SERVE_OUT="$SERVE_OUT" cargo bench -p mc-serve --bench serve_latency

test -s "$SERVE_OUT" || { echo "bench.sh: $SERVE_OUT missing or empty" >&2; exit 1; }
echo "==> bench.sh: wrote $SERVE_OUT"
